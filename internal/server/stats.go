package server

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// delayWindow is how many recent requests contribute to the /stats delay
// percentiles.
const delayWindow = 1024

// reqTiming is the per-request delay summary recorded after a stream
// finishes.
type reqTiming struct {
	// firstAnswer is the time from request admission (after decoding) to
	// the first answer leaving the handler — the per-request preprocessing
	// cost the client observes.
	firstAnswer time.Duration
	// maxDelay is the largest inter-answer gap of the stream.
	maxDelay time.Duration
}

// Stats aggregates server counters and a bounded window of per-request
// delay summaries. All methods are safe for concurrent use.
type Stats struct {
	requests          atomic.Int64
	errors            atomic.Int64
	answersStreamed   atomic.Int64
	streamsCompleted  atomic.Int64
	requestsCancelled atomic.Int64
	plansPrepared     atomic.Int64

	// scatterRequests counts range-scoped scatter calls served by this
	// process as a cluster worker (POST /datasets/{name}/scatter past the
	// version guard). Zero on single-node deployments.
	scatterRequests atomic.Int64

	// Wire counters, by negotiated answer encoding: completed-or-cancelled
	// streaming responses, answer rows and socket bytes.
	ndjsonRequests atomic.Int64
	binaryRequests atomic.Int64
	ndjsonRows     atomic.Int64
	binaryRows     atomic.Int64
	ndjsonBytes    atomic.Int64
	binaryBytes    atomic.Int64

	// Subscription counters: subscriptions admitted, delta windows
	// evaluated on behalf of them, answers those windows pushed, and the
	// times a lagging subscriber was degraded to a full resync because the
	// append log no longer covered its window.
	subsStarted        atomic.Int64
	deltasEvaluated    atomic.Int64
	deltaAnswersPushed atomic.Int64
	subsResyncs        atomic.Int64

	// Auto-bind decision counters, by resolved strategy. A shifting mix —
	// e.g. sharded picks collapsing to sequential after a data change — is
	// the observable trace of a planner regression.
	decisionSequential atomic.Int64
	decisionParallel   atomic.Int64
	decisionSharded    atomic.Int64

	mu   sync.Mutex
	ring [delayWindow]reqTiming
	next int
	n    int
}

// recordWire counts one finished streaming response under its negotiated
// encoding.
func (s *Stats) recordWire(media string, rows int, bytes int64) {
	if media == wire.MediaTypeBinary {
		s.binaryRequests.Add(1)
		s.binaryRows.Add(int64(rows))
		s.binaryBytes.Add(bytes)
		return
	}
	s.ndjsonRequests.Add(1)
	s.ndjsonRows.Add(int64(rows))
	s.ndjsonBytes.Add(bytes)
}

// RecordTiming appends one request's delay summary to the window.
func (s *Stats) RecordTiming(firstAnswer, maxDelay time.Duration) {
	s.mu.Lock()
	s.ring[s.next] = reqTiming{firstAnswer: firstAnswer, maxDelay: maxDelay}
	s.next = (s.next + 1) % delayWindow
	if s.n < delayWindow {
		s.n++
	}
	s.mu.Unlock()
}

// DelayPercentiles summarises per-request delays over the stats window, in
// nanoseconds: FirstAnswer is the time to the first streamed answer,
// InterAnswerMax the worst inter-answer gap within a request.
type DelayPercentiles struct {
	Window            int   `json:"window"`
	FirstAnswerP50    int64 `json:"first_answer_p50_ns"`
	FirstAnswerP95    int64 `json:"first_answer_p95_ns"`
	FirstAnswerP99    int64 `json:"first_answer_p99_ns"`
	InterAnswerMaxP50 int64 `json:"inter_answer_max_p50_ns"`
	InterAnswerMaxP95 int64 `json:"inter_answer_max_p95_ns"`
	InterAnswerMaxP99 int64 `json:"inter_answer_max_p99_ns"`
}

// Snapshot is the GET /stats response body.
type Snapshot struct {
	Requests         int64 `json:"requests"`
	Errors           int64 `json:"errors"`
	AnswersStreamed  int64 `json:"answers_streamed"`
	StreamsCompleted int64 `json:"streams_completed"`
	// RequestsCancelled counts streams cut short by the client going away
	// (context cancellation or a failed write): the enumeration was
	// cancelled and its executor workers released without a trailer.
	RequestsCancelled int64      `json:"requests_cancelled"`
	PlansPrepared     int64      `json:"plans_prepared"`
	Cache             CacheStats `json:"cache"`
	// BindCache counts the catalog's bind cache: misses are Theorem 12
	// preprocessing runs for dataset queries, hits are dataset binds served
	// without one.
	BindCache CacheStats `json:"bind_cache"`
	// DecisionModes counts cost-based (auto) binds by the strategy the
	// planner resolved: "sequential", "parallel" or "sharded". Explicit
	// execution options are not counted — no decision was made.
	DecisionModes map[string]int64 `json:"decision_modes"`
	// Datasets gauges every registered dataset (sorted by name).
	Datasets []DatasetGauge   `json:"datasets,omitempty"`
	Delays   DelayPercentiles `json:"delays"`
	// ScatterRequests counts scatter calls served as a cluster worker;
	// omitted on single-node deployments, keeping their /stats body
	// byte-identical.
	ScatterRequests int64 `json:"scatter_requests,omitempty"`
	// Wire breaks streaming traffic down by negotiated answer encoding and
	// surfaces the admission gate's gauges.
	Wire WireSnapshot `json:"wire"`
	// Subscriptions is the live-subscription section: the /subscribe gate's
	// gauges plus the incremental-maintenance counters.
	Subscriptions SubscriptionsSnapshot `json:"subscriptions"`
	// Cluster is the coordinator's view of its workers; nil outside
	// coordinator mode.
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
	// Storage is the durability and spill section; nil unless the server
	// was opened with a data directory or runs with a spill budget,
	// keeping the plain in-memory /stats body byte-identical.
	Storage *StorageSnapshot `json:"storage,omitempty"`
}

// WireSnapshot is the wire section of GET /stats: per-encoding traffic
// counters plus the streaming admission gate.
type WireSnapshot struct {
	// NDJSONRequests/BinaryRequests count finished streaming responses by
	// negotiated encoding; rows and bytes are the answers and socket bytes
	// they carried (bytes measured under the stream buffer, so they are
	// what actually left the process).
	NDJSONRequests int64 `json:"ndjson_requests"`
	BinaryRequests int64 `json:"binary_requests"`
	NDJSONRows     int64 `json:"ndjson_rows"`
	BinaryRows     int64 `json:"binary_rows"`
	NDJSONBytes    int64 `json:"ndjson_bytes"`
	BinaryBytes    int64 `json:"binary_bytes"`
	// StreamsActive/StreamsQueued gauge the admission semaphore;
	// StreamsShed counts requests rejected with 429 at the queue deadline.
	StreamsActive int64 `json:"streams_active"`
	StreamsQueued int64 `json:"streams_queued"`
	StreamsShed   int64 `json:"streams_shed"`
	// MaxStreams is the configured concurrency cap.
	MaxStreams int `json:"max_streams"`
	// SubscriptionsActive/SubscriptionsShed gauge the separate /subscribe
	// admission gate; MaxSubscriptions is its cap. Subscriptions never
	// consume MaxStreams slots — the two gates are independent, so
	// long-lived subscribers cannot starve one-shot query streams.
	SubscriptionsActive int64 `json:"subscriptions_active"`
	SubscriptionsShed   int64 `json:"subscriptions_shed"`
	MaxSubscriptions    int   `json:"max_subscriptions"`
}

// SubscriptionsSnapshot is the subscriptions section of GET /stats:
// incremental answer maintenance observed from the server side.
type SubscriptionsSnapshot struct {
	// Active gauges the currently-connected subscriptions; Started counts
	// every subscription admitted since the process started.
	Active  int64 `json:"active"`
	Started int64 `json:"started"`
	// DeltasEvaluated counts delta windows evaluated on behalf of
	// subscribers (one per append batch a subscriber caught up over);
	// AnswersPushed counts the new answers those evaluations pushed.
	DeltasEvaluated int64 `json:"deltas_evaluated"`
	AnswersPushed   int64 `json:"answers_pushed"`
	// Resyncs counts the times a subscriber was degraded to a full
	// re-enumeration because the dataset's append log no longer covered its
	// catch-up window (slow consumer, Replace, or log compaction).
	Resyncs int64 `json:"resyncs"`
	// MaxSubscriptions is the configured concurrency cap.
	MaxSubscriptions int `json:"max_subscriptions"`
}

// StorageSnapshot is the storage section of GET /stats: the durable
// store's journal gauges plus the process-wide spill-table counters.
type StorageSnapshot struct {
	// DataDir is the journal directory; empty when the catalog is
	// in-memory and only the spill gauges below are live.
	DataDir string `json:"data_dir,omitempty"`
	// Datasets counts datasets with open durable state.
	Datasets int `json:"datasets"`
	// Recovered counts datasets replayed from the journal at startup;
	// TornTails counts invalid WAL tails truncated while doing so.
	Recovered int64 `json:"recovered"`
	TornTails int64 `json:"torn_tails"`
	// WALRecords/WALBytes count acknowledged journal appends;
	// SnapshotWrites counts snapshot installations.
	WALRecords     int64 `json:"wal_records"`
	WALBytes       int64 `json:"wal_bytes"`
	SnapshotWrites int64 `json:"snapshot_writes"`
	// SpillSets/SpillTuples/SpillBytes gauge the disk-backed dedup tables
	// currently open across all in-flight queries.
	SpillSets   int64 `json:"spill_sets"`
	SpillTuples int64 `json:"spill_tuples"`
	SpillBytes  int64 `json:"spill_bytes"`
}

// ClusterSnapshot is the coordinator section of GET /stats. The
// coordinator's own counters above describe merged client-facing streams;
// worker-process counters (answers_streamed, decision_modes, delay
// percentiles) are process-local per worker, so they are surfaced
// namespaced under worker_stats, with explicit cross-worker totals for
// the two that are otherwise misleading when read off the coordinator.
type ClusterSnapshot struct {
	// Workers is the static worker list, normalized.
	Workers []string `json:"workers"`
	// Scatter counts the coordinator's fan-out activity: scatter vs
	// fallback queries, calls issued, retries and straggler re-splits.
	Scatter cluster.Totals `json:"scatter"`
	// Datasets lists the cluster-replicated datasets from the
	// coordinator's registry.
	Datasets []DatasetInfo `json:"datasets,omitempty"`
	// WorkerAnswersStreamedTotal sums answers_streamed across workers —
	// the cluster-wide enumeration volume (retried ranges count twice).
	WorkerAnswersStreamedTotal int64 `json:"worker_answers_streamed_total"`
	// WorkerDecisionModesTotal sums decision_modes across workers.
	WorkerDecisionModesTotal map[string]int64 `json:"worker_decision_modes_total"`
	// WorkerStats holds each reachable worker's raw /stats body, keyed by
	// worker base URL.
	WorkerStats map[string]json.RawMessage `json:"worker_stats"`
	// WorkerErrors maps unreachable workers to the fetch error.
	WorkerErrors map[string]string `json:"worker_errors,omitempty"`
}

// DatasetGauge is one registered dataset's /stats entry.
type DatasetGauge struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Rows      int    `json:"rows"`
	Relations int    `json:"relations"`
	// Queries counts POST /datasets/{name}/query requests admitted for
	// this dataset since it was registered.
	Queries int64 `json:"queries"`
}

// delays computes the percentile summary over the current window.
func (s *Stats) delays() DelayPercentiles {
	s.mu.Lock()
	first := make([]int64, 0, s.n)
	inter := make([]int64, 0, s.n)
	for i := 0; i < s.n; i++ {
		first = append(first, int64(s.ring[i].firstAnswer))
		inter = append(inter, int64(s.ring[i].maxDelay))
	}
	s.mu.Unlock()
	out := DelayPercentiles{Window: len(first)}
	if len(first) == 0 {
		return out
	}
	sort.Slice(first, func(i, j int) bool { return first[i] < first[j] })
	sort.Slice(inter, func(i, j int) bool { return inter[i] < inter[j] })
	out.FirstAnswerP50 = percentile(first, 50)
	out.FirstAnswerP95 = percentile(first, 95)
	out.FirstAnswerP99 = percentile(first, 99)
	out.InterAnswerMaxP50 = percentile(inter, 50)
	out.InterAnswerMaxP95 = percentile(inter, 95)
	out.InterAnswerMaxP99 = percentile(inter, 99)
	return out
}

// percentile reads the p-th percentile from a sorted slice.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
