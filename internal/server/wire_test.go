package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// TestNegotiateEncoding is the Accept matrix: the binary encoding must be
// named exactly and strictly preferred to win; everything else — absent
// headers, wildcards, unknown media types, ties, malformed q-values —
// keeps the NDJSON default.
func TestNegotiateEncoding(t *testing.T) {
	bin, text := wire.MediaTypeBinary, wire.MediaTypeNDJSON
	cases := []struct {
		accept string
		want   string
	}{
		{"", text},
		{text, text},
		{bin, bin},
		{"*/*", text},
		{"application/*", text},
		{"application/json", text},
		{"text/html, application/xhtml+xml", text},
		// Exact name beats nothing else being named.
		{bin + ";q=0.5", bin},
		// q=0 is an explicit refusal.
		{bin + ";q=0", text},
		// Strictly higher q wins; ties go to NDJSON.
		{bin + ";q=0.9, " + text + ";q=0.5", bin},
		{bin + ";q=0.5, " + text + ";q=0.9", text},
		{bin + ";q=0.5, " + text + ";q=0.5", text},
		// Wildcards count toward NDJSON: "anything" means "what you already
		// speak", not an opt-in to a binary format the client never named.
		{bin + ";q=0.5, */*", text},
		{bin + ", */*;q=0.1", bin},
		// Malformed q: the entry is ignored.
		{bin + ";q=banana", text},
		{bin + ";q=2", text},
		{bin + ";q=banana, " + bin + ";q=0.8", bin},
		// Case-insensitive media type, whitespace tolerated.
		{" Application/X-UCQ-BIN ;q=1", bin},
	}
	for _, c := range cases {
		if got := negotiateEncoding(c.accept); got != c.want {
			t.Errorf("negotiateEncoding(%q) = %q, want %q", c.accept, got, c.want)
		}
	}
}

// postAccept sends a QueryRequest with an explicit Accept header.
func postAccept(t *testing.T, url, accept string, req QueryRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if accept != "" {
		hr.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readBinaryStream decodes a binary frame response: answer rows then the
// trailer frame.
func readBinaryStream(t *testing.T, resp *http.Response) ([][]int64, wire.Trailer) {
	t.Helper()
	defer resp.Body.Close()
	dec := wire.NewDecoder(resp.Body)
	var answers [][]int64
	var tr wire.Trailer
	sawTrailer := false
	for {
		fr, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding frame: %v", err)
		}
		switch fr.Kind {
		case wire.KindBlock:
			if sawTrailer {
				t.Fatal("block after trailer")
			}
			for _, tup := range fr.Tuples {
				row := make([]int64, len(tup))
				for i, v := range tup {
					if v.Tag() != 0 {
						t.Fatalf("unexpected tagged value %s", v)
					}
					row[i] = v.Payload()
				}
				answers = append(answers, row)
			}
		case wire.KindTrailer:
			tr = *fr.Trailer
			sawTrailer = true
		}
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer frame")
	}
	return answers, tr
}

// TestQueryBinaryEncoding checks the tentpole end to end on /query: a
// binary-accepting client gets frames whose decoded answer set and
// trailer match the NDJSON stream exactly.
func TestQueryBinaryEncoding(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := QueryRequest{Query: example2, Relations: smallRelations()}

	ndResp := post(t, ts.URL, req)
	wantAnswers, wantTr := readStream(t, ndResp)

	resp := postAccept(t, ts.URL, wire.MediaTypeBinary, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != wire.MediaTypeBinary {
		t.Fatalf("Content-Type = %q, want %q", got, wire.MediaTypeBinary)
	}
	answers, tr := readBinaryStream(t, resp)

	sortRows(answers)
	sortRows(wantAnswers)
	if fmt.Sprint(answers) != fmt.Sprint(wantAnswers) {
		t.Errorf("binary answers = %v, want %v", answers, wantAnswers)
	}
	if !tr.Done || tr.Count != wantTr.Count || tr.Mode != wantTr.Mode || tr.Cache == "" {
		t.Errorf("binary trailer = %+v, want fields of %+v", tr, wantTr)
	}
}

// TestQueryUnknownAcceptFallsBack: a client asking for some other media
// type still gets the NDJSON stream, not an error.
func TestQueryUnknownAcceptFallsBack(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postAccept(t, ts.URL, "application/protobuf, image/png;q=0.5",
		QueryRequest{Query: example2, Relations: smallRelations()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != wire.MediaTypeNDJSON {
		t.Fatalf("Content-Type = %q, want NDJSON fallback", got)
	}
	answers, tr := readStream(t, resp)
	if len(answers) != 6 || !tr.Done {
		t.Fatalf("fallback stream broken: %d answers, trailer %+v", len(answers), tr)
	}
}

// TestScatterBinaryEncoding drives the scatter endpoint with a binary
// Accept and checks the full frame protocol: ScatterHeader as header-frame
// metadata (arity included), marker frames at root boundaries, and a
// trailer frame — decoding to the same answers as the text scatter stream.
func TestScatterBinaryEncoding(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putTestDataset(t, ts.URL, "join", joinRelations(6, 3, 2))

	req := cluster.ScatterRequest{Query: fullJoin, RootLo: 0, RootHi: -1, MarkerEvery: 2}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/datasets/join/scatter", bytes.NewReader(req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", wire.MediaTypeBinary)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != wire.MediaTypeBinary {
		t.Fatalf("Content-Type = %q", got)
	}

	dec := wire.NewDecoder(resp.Body)
	var answers [][]int64
	var hdr cluster.ScatterHeader
	markers := 0
	var tr wire.Trailer
	sawHeader, sawTrailer := false, false
	for {
		fr, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding frame: %v", err)
		}
		switch fr.Kind {
		case wire.KindHeader:
			if err := json.Unmarshal(fr.Meta, &hdr); err != nil {
				t.Fatalf("header meta: %v", err)
			}
			sawHeader = true
		case wire.KindBlock:
			for _, tup := range fr.Tuples {
				row := make([]int64, len(tup))
				for i, v := range tup {
					row[i] = v.Payload()
				}
				answers = append(answers, row)
			}
		case wire.KindMarker:
			markers++
		case wire.KindTrailer:
			tr = *fr.Trailer
			sawTrailer = true
		}
	}
	if !sawHeader || !hdr.Header || !hdr.Scatterable {
		t.Fatalf("scatter header = %+v", hdr)
	}
	if hdr.Arity != 3 {
		t.Fatalf("header arity = %d, want 3", hdr.Arity)
	}
	if !sawTrailer || !tr.Done || tr.Count != 12 || tr.RootDone != hdr.RootLen {
		t.Fatalf("scatter trailer = %+v (rootLen %d)", tr, hdr.RootLen)
	}
	if markers == 0 {
		t.Fatal("no marker frames despite MarkerEvery=2 over 12 answers")
	}
	// R(x, x%3) joined with S(z, z*1000+j): answers (x, x%3, (x%3)*1000+j).
	var want [][]int64
	for x := int64(0); x < 6; x++ {
		for j := int64(0); j < 2; j++ {
			want = append(want, []int64{x, x % 3, (x%3)*1000 + j})
		}
	}
	sortRows(answers)
	sortRows(want)
	if fmt.Sprint(answers) != fmt.Sprint(want) {
		t.Errorf("scatter answers = %v, want %v", answers, want)
	}
}

// TestAdmissionShed checks the gate's HTTP behaviour: with every slot
// held, a streaming request is shed with 429 + Retry-After within the
// queue deadline, and served again once a slot frees up.
func TestAdmissionShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStreams: 1, QueueDeadline: 50 * time.Millisecond})

	// Occupy the only slot directly — deterministic, no reliance on write
	// backpressure to park a real stream.
	if err := s.admission.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Errorf("shed body: %v / %+v", err, er)
	}
	if elapsed > 5*time.Second {
		t.Errorf("shed took %v; the request stalled instead of shedding at the deadline", elapsed)
	}

	// Shedding is overload management, not a server error.
	snap := s.StatsSnapshot()
	if snap.Errors != 0 {
		t.Errorf("errors = %d after a shed, want 0", snap.Errors)
	}
	if snap.Wire.StreamsShed != 1 {
		t.Errorf("streams_shed = %d, want 1", snap.Wire.StreamsShed)
	}
	if snap.Wire.MaxStreams != 1 {
		t.Errorf("max_streams = %d, want 1", snap.Wire.MaxStreams)
	}

	s.admission.release()
	resp2 := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp2.StatusCode)
	}
	answers, _ := readStream(t, resp2)
	if len(answers) != 6 {
		t.Fatalf("answers after release = %d, want 6", len(answers))
	}
}

// TestAdmissionQueueThenServe: a request that queues behind a slot
// released before the deadline is served normally, not shed.
func TestAdmissionQueueThenServe(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStreams: 1, QueueDeadline: 2 * time.Second})
	if err := s.admission.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.admission.release()
	}()
	resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after the queued slot freed", resp.StatusCode)
	}
	answers, tr := readStream(t, resp)
	if len(answers) != 6 || !tr.Done {
		t.Fatalf("queued request broken: %d answers, trailer %+v", len(answers), tr)
	}
	if shed := s.StatsSnapshot().Wire.StreamsShed; shed != 0 {
		t.Errorf("streams_shed = %d, want 0", shed)
	}
}

// TestWireStatsCounters: /stats breaks streamed traffic down by the
// encoding that carried it.
func TestWireStatsCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := QueryRequest{Query: example2, Relations: smallRelations()}

	nd := post(t, ts.URL, req)
	readStream(t, nd)
	bin := postAccept(t, ts.URL, wire.MediaTypeBinary, req)
	readBinaryStream(t, bin)

	w := s.StatsSnapshot().Wire
	if w.NDJSONRequests != 1 || w.BinaryRequests != 1 {
		t.Fatalf("request counts = %d ndjson / %d binary, want 1/1", w.NDJSONRequests, w.BinaryRequests)
	}
	if w.NDJSONRows != 6 || w.BinaryRows != 6 {
		t.Errorf("row counts = %d ndjson / %d binary, want 6/6", w.NDJSONRows, w.BinaryRows)
	}
	if w.NDJSONBytes <= 0 || w.BinaryBytes <= 0 {
		t.Errorf("byte counts = %d ndjson / %d binary, want both > 0", w.NDJSONBytes, w.BinaryBytes)
	}
	if w.StreamsActive != 0 || w.StreamsQueued != 0 {
		t.Errorf("gauges after idle = active %d queued %d, want 0/0", w.StreamsActive, w.StreamsQueued)
	}
}
