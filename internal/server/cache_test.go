package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	ucq "repro"
)

func prepared(t *testing.T, src string) func() (*ucq.PreparedQuery, error) {
	t.Helper()
	return func() (*ucq.PreparedQuery, error) {
		return ucq.Prepare(ucq.MustParse(src), nil)
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	c := NewPlanCache(2)
	pqA, hit, err := c.Get("a", prepared(t, "Q(x) <- R(x)."))
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	got, hit, err := c.Get("a", prepared(t, "Q(x) <- R(x)."))
	if err != nil || !hit || got != pqA {
		t.Fatalf("second get: hit=%v same=%v err=%v", hit, got == pqA, err)
	}
	c.Get("b", prepared(t, "Q(x) <- S(x)."))
	c.Get("a", prepared(t, "Q(x) <- R(x).")) // touch a: recency a > b
	c.Get("c", prepared(t, "Q(x) <- T(x).")) // evicts "b", the least recently used
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v", st)
	}
	if _, hit, _ := c.Get("a", prepared(t, "Q(x) <- R(x).")); !hit {
		t.Error("a should have survived eviction (LRU order)")
	}
	if _, hit, _ := c.Get("b", prepared(t, "Q(x) <- S(x).")); hit {
		t.Error("b should have been evicted")
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewPlanCache(4)
	fail := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, hit, err := c.Get("k", func() (*ucq.PreparedQuery, error) {
			calls++
			return nil, fail
		})
		if hit || !errors.Is(err, fail) {
			t.Fatalf("get %d: hit=%v err=%v", i, hit, err)
		}
	}
	if calls != 2 {
		t.Errorf("prepare ran %d times, want 2 (errors are not cached)", calls)
	}
	if st := c.Stats(); st.Size != 0 {
		t.Errorf("size = %d, want 0", st.Size)
	}
}

// TestCacheCoalescesConcurrentMisses proves the singleflight behavior: N
// goroutines racing on one cold key run the preparation exactly once.
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	c := NewPlanCache(4)
	var prepares atomic.Int32
	release := make(chan struct{})
	const workers = 8

	var wg sync.WaitGroup
	results := make([]*ucq.PreparedQuery, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pq, _, err := c.Get("k", func() (*ucq.PreparedQuery, error) {
				prepares.Add(1)
				<-release // hold the flight open so the others must join it
				return ucq.Prepare(ucq.MustParse("Q(x) <- R(x)."), nil)
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = pq
		}(i)
	}
	close(release)
	wg.Wait()
	if n := prepares.Load(); n != 1 {
		t.Errorf("prepare ran %d times, want 1", n)
	}
	for i, pq := range results {
		if pq != results[0] {
			t.Errorf("worker %d got a different PreparedQuery", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", st, workers-1)
	}
}
