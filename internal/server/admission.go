package server

// Admission control for streaming requests: a bounded semaphore sized by
// Config.MaxStreams gates every answer-streaming handler (inline /query,
// dataset queries, the coordinator's merged stream, non-probe scatter
// calls). A request that cannot get a slot queues for at most
// Config.QueueDeadline and is then shed with 429 + Retry-After — overload
// degrades into fast, explicit rejections the client can back off from,
// instead of every stream slowing down together until the enumeration
// executor collapses. Count-only requests and probes are not gated: they
// hold no enumeration resources worth queueing for.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// errStreamShed reports an admission queue deadline expiry.
var errStreamShed = errors.New("server: streaming admission queue deadline expired")

// admission is the streaming-concurrency gate.
type admission struct {
	sem      chan struct{}
	deadline time.Duration

	active atomic.Int64
	queued atomic.Int64
	shed   atomic.Int64
}

func newAdmission(maxStreams int, deadline time.Duration) *admission {
	return &admission{sem: make(chan struct{}, maxStreams), deadline: deadline}
}

// acquire takes a streaming slot, queueing up to the deadline. It returns
// errStreamShed on deadline expiry and the context error if the client
// went away while queued. A nil return must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		a.active.Add(1)
		return nil
	default:
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.deadline)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.active.Add(1)
		return nil
	case <-timer.C:
		a.shed.Add(1)
		return errStreamShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	a.active.Add(-1)
	<-a.sem
}

// admitStream acquires a streaming slot for this request, writing the shed
// response itself on failure. ok=false means the response is already
// handled; on ok=true the caller must s.admission.release() when the
// stream ends.
func (s *Server) admitStream(w http.ResponseWriter, r *http.Request) bool {
	return s.admit(w, r, s.admission,
		"server is at its concurrent stream limit; retry later")
}

// admitSubscription is admitStream for the separate /subscribe gate: its
// cap (Config.MaxSubscriptions) and its shed reason are distinct, so a
// client can tell which limit it hit, and saturated subscriptions never
// consume a MaxStreams slot (or vice versa).
func (s *Server) admitSubscription(w http.ResponseWriter, r *http.Request) bool {
	return s.admit(w, r, s.subAdmission,
		"server is at its concurrent subscription limit; retry later")
}

func (s *Server) admit(w http.ResponseWriter, r *http.Request, a *admission, shedMsg string) bool {
	err := a.acquire(r.Context())
	switch {
	case err == nil:
		return true
	case errors.Is(err, errStreamShed):
		// Shed: tell the client when to come back. Not counted as a server
		// error — the whole point is that rejection here is healthy.
		retryAfter := int(a.deadline / time.Second)
		if retryAfter < 1 {
			retryAfter = 1
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: shedMsg})
		return false
	default:
		// The client gave up while queued.
		s.stats.requestsCancelled.Add(1)
		return false
	}
}
