package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// bigStarRequest builds a /query body whose full star join has side²
// answers — enough that a stream is genuinely mid-enumeration when the
// client walks away.
func bigStarRequest(t *testing.T, side int64, opts QueryOptions) []byte {
	t.Helper()
	rels := map[string][][]int64{"R": {}, "S": {}}
	for i := int64(0); i < side; i++ {
		rels["R"] = append(rels["R"], []int64{i, 0})
		rels["S"] = append(rels["S"], []int64{0, i})
	}
	body, err := json.Marshal(QueryRequest{
		Query:     "Q(x,z,y) <- R(x,z), S(z,y).",
		Relations: rels,
		Options:   opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestClientDisconnectCancelsEnumeration cancels a streaming request after
// the first answer and checks the server releases the enumeration: the
// request is counted as cancelled, far fewer answers than the total were
// streamed, and the executor workers are gone.
func TestClientDisconnectCancelsEnumeration(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const side = 1200 // 1.44M answers
	body := bigStarRequest(t, side, QueryOptions{Parallel: true, Workers: 4, Batch: 16})

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first answer: %v", err)
	}
	// Walk away mid-stream.
	cancel()
	resp.Body.Close()

	// The handler notices the dead client, cancels the enumeration and
	// records the request as cancelled.
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.requestsCancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("request was never counted as cancelled (stats %+v)", s.StatsSnapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := s.StatsSnapshot()
	if snap.StreamsCompleted != 0 {
		t.Errorf("cancelled stream counted as completed: %+v", snap)
	}
	if snap.AnswersStreamed >= side*side/2 {
		t.Errorf("server enumerated %d answers for a dead client (of %d)", snap.AnswersStreamed, side*side)
	}

	// Executor workers must be released, not parked until process exit.
	for runtime.NumGoroutine() > baseline+5 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle after disconnect: %d vs %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsCountsCancelledRequests checks the /stats wire field.
func TestStatsCountsCancelledRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	body := bigStarRequest(t, 800, QueryOptions{Parallel: true})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.requestsCancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("requests_cancelled never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The JSON snapshot carries the counter.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(sr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.RequestsCancelled < 1 {
		t.Errorf("stats requests_cancelled = %d, want ≥ 1", snap.RequestsCancelled)
	}
}
