package server

import (
	"testing"
	"time"
)

func TestDelayPercentiles(t *testing.T) {
	var s Stats
	if d := s.delays(); d.Window != 0 || d.FirstAnswerP50 != 0 {
		t.Errorf("empty delays = %+v", d)
	}
	// 100 requests with first-answer times 1..100µs and max delays
	// 101..200µs.
	for i := 1; i <= 100; i++ {
		s.RecordTiming(time.Duration(i)*time.Microsecond, time.Duration(100+i)*time.Microsecond)
	}
	d := s.delays()
	if d.Window != 100 {
		t.Fatalf("window = %d", d.Window)
	}
	us := int64(time.Microsecond)
	if d.FirstAnswerP50 != 51*us || d.FirstAnswerP95 != 96*us || d.FirstAnswerP99 != 100*us {
		t.Errorf("first-answer percentiles = %d %d %d", d.FirstAnswerP50/us, d.FirstAnswerP95/us, d.FirstAnswerP99/us)
	}
	if d.InterAnswerMaxP50 != 151*us || d.InterAnswerMaxP99 != 200*us {
		t.Errorf("inter-answer percentiles = %d %d", d.InterAnswerMaxP50/us, d.InterAnswerMaxP99/us)
	}
}

func TestDelayWindowWrapsAround(t *testing.T) {
	var s Stats
	// Overfill the ring: the window must stay bounded and hold the most
	// recent samples.
	for i := 0; i < delayWindow+50; i++ {
		s.RecordTiming(time.Duration(i), 0)
	}
	d := s.delays()
	if d.Window != delayWindow {
		t.Errorf("window = %d, want %d", d.Window, delayWindow)
	}
	// The oldest surviving sample is i=50, so p50 reflects the newer half.
	if d.FirstAnswerP50 < 50 {
		t.Errorf("p50 = %d, stale samples survived the wrap", d.FirstAnswerP50)
	}
}

func TestPercentileBounds(t *testing.T) {
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %d", got)
	}
	one := []int64{42}
	for _, p := range []int{0, 50, 99, 100} {
		if got := percentile(one, p); got != 42 {
			t.Errorf("percentile(one, %d) = %d", p, got)
		}
	}
}
