package server

// Worker-side scatter endpoint: POST /datasets/{name}/scatter evaluates a
// UCQ over a contiguous root-row range of the dataset's current snapshot
// and streams the answers in ascending root order with interleaved
// progress markers. This is the coordinator's range-scoped query protocol
// (see internal/cluster): markers are exact resume points, the version
// guard keeps a scatter from mixing snapshots across workers, and probes
// answer the "is this plan scatterable, and how big is its root domain?"
// question without enumerating. The endpoint exists on every server —
// single-node deployments simply never call it.
//
// The stream encoding is negotiated like every other answer stream:
// coordinators ask for the binary columnar frames (the ScatterHeader rides
// as the header frame's metadata, markers and the trailer as their own
// frame kinds), and clients without an Accept preference get the original
// NDJSON lines.

import (
	"io"
	"net/http"

	ucq "repro"
	"repro/internal/cluster"
)

// handleDatasetScatter serves one range-scoped scatter call.
func (s *Server) handleDatasetScatter(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	req, err := cluster.DecodeScatterRequest(body)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Probes answer from the plan header without enumerating — they hold
	// no streaming resources, so they bypass admission (a coordinator must
	// be able to size up a query even while the worker is saturated).
	if !req.Probe {
		if !s.admitStream(w, r) {
			return
		}
		defer s.admission.release()
	}
	u, err := ucq.Parse(req.Query)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing query: %v", err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "auto"
	}
	ds, ok := s.catalog.Dataset(name)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	pq, hit, err := s.prepared(mode, u)
	if err != nil {
		s.planError(w, err)
		return
	}

	// Scatter binds are explicitly sequential: the executor-level
	// parallelism lives on the coordinator's fan-out, and one worker serves
	// one call per connection — local work-stealing underneath would only
	// fight the range contract. The explicit options share the bind-cache
	// key with explicit sequential dataset queries.
	exec := &ucq.PlanOptions{ForceNaive: mode == "naive"}
	plan, err := pq.BindDatasetExecContext(r.Context(), ds, exec)
	if err != nil {
		if r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		s.planError(w, err)
		return
	}
	// The guard compares against the snapshot the plan actually bound — not
	// the catalog's current version — so a Replace racing this request still
	// yields an exact answer: either the bind caught the registered
	// snapshot, or the call 409s and the coordinator fails it over.
	if req.Version != 0 && plan.DatasetVersion() != req.Version {
		s.httpError(w, http.StatusConflict, "dataset %q is at version %d, caller expects %d",
			name, plan.DatasetVersion(), req.Version)
		return
	}
	s.stats.scatterRequests.Add(1)

	rootLen, scatterable := plan.RootLen()
	hdr := cluster.ScatterHeader{
		Header:         true,
		Scatterable:    scatterable,
		RootLen:        rootLen,
		Arity:          plan.Query.Arity(),
		Mode:           plan.Mode.String(),
		Cache:          cacheState(hit),
		Bind:           cacheState(plan.BindCacheHit()),
		Dataset:        plan.DatasetName(),
		DatasetVersion: plan.DatasetVersion(),
	}

	media := negotiateEncoding(r.Header.Get("Accept"))
	enc, err := newAnswerEncoder(w, media, hdr.Arity)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("X-Ucq-Mode", plan.Mode.String())
	w.WriteHeader(http.StatusOK)
	_ = enc.scatterHeader(&hdr)
	_ = enc.flush()
	if req.Probe || !scatterable {
		// A probe never enumerates; a non-scatterable non-probe ends here
		// too — the coordinator reads scatterable=false off the header and
		// takes the single-worker fallback.
		return
	}

	lo, hi := req.RootLo, req.RootHi
	if hi == -1 || hi > rootLen {
		hi = rootLen
	}
	if lo > hi {
		lo = hi
	}
	ra, err := plan.AnswersRootRange(lo, hi)
	if err != nil {
		// RootLen said scatterable; reaching this is a bug.
		panic(err)
	}
	markerEvery := req.MarkerEvery
	if markerEvery <= 0 {
		markerEvery = cluster.DefaultMarkerEvery
	}

	count, sinceMarker := 0, 0
	prevPos := -1
	cancelled := false
	for {
		if r.Context().Err() != nil {
			cancelled = true
			break
		}
		t, ok := ra.Next()
		if !ok {
			break
		}
		pos := ra.RootPos()
		// A marker may only land on a root boundary: root_done = pos claims
		// every answer with root < pos is already out, which, with the
		// ascending root order, is exactly true when this answer is the
		// first of its root row.
		if count > 0 && pos > prevPos && sinceMarker >= markerEvery {
			if err := enc.marker(pos); err != nil {
				cancelled = true
				break
			}
			if err := enc.flush(); err != nil {
				cancelled = true
				break
			}
			sinceMarker = 0
		}
		prevPos = pos
		if err := enc.appendTuple(t); err != nil {
			cancelled = true
			break
		}
		count++
		sinceMarker++
		if count == 1 || count%s.cfg.FlushEvery == 0 {
			if err := enc.flush(); err != nil {
				cancelled = true
				break
			}
		}
	}
	s.stats.answersStreamed.Add(int64(count))
	defer func() { s.stats.recordWire(media, count, enc.bytesOut()) }()
	if cancelled || r.Context().Err() != nil {
		s.stats.requestsCancelled.Add(1)
		return
	}
	_ = enc.scatterTrailer(cluster.ScatterTrailer{Done: true, Count: count, RootDone: hi})
	_ = enc.flush()
	s.stats.streamsCompleted.Add(1)
}
