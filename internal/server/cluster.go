package server

// Coordinator mode: when Config.Cluster names workers, the /datasets
// endpoints stop touching the local catalog and instead fan out over the
// cluster — PUT replicates the dataset to every worker (through each
// worker's PR-style catalog and versioned bind cache), and
// /datasets/{name}/query scatters the query by root-row ranges, merging
// the worker streams dedup-free (see internal/cluster). The inline
// /query endpoint keeps evaluating locally: it carries its instance in
// the request and gains nothing from placement. /stats grows a "cluster"
// section with scatter counters and namespaced per-worker snapshots.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
)

// clusterError maps a cluster-layer failure onto an HTTP status: unknown
// datasets are the client's 404, worker-reported client errors (400, 404,
// 409) pass through, and transport-level trouble is a 502.
func (s *Server) clusterError(w http.ResponseWriter, err error) {
	if errors.Is(err, cluster.ErrUnknownDataset) {
		s.httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if status, ok := cluster.WorkerStatus(err); ok && status >= 400 && status < 500 {
		s.httpError(w, status, "%v", err)
		return
	}
	s.httpError(w, http.StatusBadGateway, "%v", err)
}

// handleClusterDatasetPut replicates a dataset write to every worker.
func (s *Server) handleClusterDatasetPut(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	// Shape-check before fanning out: a malformed body should cost one 400,
	// not len(workers) rejected replications.
	var req DatasetRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	info, err := s.cluster.PutDataset(r.Context(), name, body)
	if err != nil {
		s.clusterError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(DatasetInfo(info))
}

// handleClusterDatasetList serves the coordinator's dataset registry.
func (s *Server) handleClusterDatasetList(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	list := DatasetListResponse{Datasets: []DatasetInfo{}}
	for _, info := range s.cluster.Datasets() {
		list.Datasets = append(list.Datasets, DatasetInfo(info))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// handleClusterDatasetGet serves one registered dataset's info.
func (s *Server) handleClusterDatasetGet(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	info, ok := s.cluster.Dataset(r.PathValue("name"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(DatasetInfo(info))
}

// handleClusterDatasetDelete drops a dataset across the cluster.
func (s *Server) handleClusterDatasetDelete(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if err := s.cluster.DropDataset(r.Context(), r.PathValue("name")); err != nil {
		s.clusterError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClusterDatasetCount proxies a count to one worker: placement is
// replicate-all, so any single worker's exact count is the cluster's.
func (s *Server) handleClusterDatasetCount(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")
	req, _, mode, _, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if len(req.Relations) > 0 {
		s.httpError(w, http.StatusBadRequest,
			"inline relations are not allowed on dataset queries; PUT /datasets/%s instead", name)
		return
	}
	s.proxyCount(w, r, name, req.Query, mode)
}

// proxyCount forwards a rebuilt count-only request to one worker and
// relays the response.
func (s *Server) proxyCount(w http.ResponseWriter, r *http.Request, name, query, mode string) {
	body, _ := json.Marshal(QueryRequest{Query: query, Options: QueryOptions{Mode: mode, CountOnly: true}})
	status, raw, err := s.cluster.ProxyCount(r.Context(), name, body)
	if err != nil {
		s.clusterError(w, err)
		return
	}
	if status != http.StatusOK {
		s.stats.errors.Add(1)
	} else {
		s.stats.streamsCompleted.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// handleClusterDatasetQuery scatters a dataset query across the workers
// and streams the merged answers in the client's negotiated encoding.
// The scatter hop already decoded worker streams to tuples, so re-framing
// here is a straight encode — a binary-speaking client never pays for a
// text round trip through the coordinator.
func (s *Server) handleClusterDatasetQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")
	req, _, mode, _, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if len(req.Relations) > 0 {
		s.httpError(w, http.StatusBadRequest,
			"inline relations are not allowed on dataset queries; PUT /datasets/%s instead", name)
		return
	}
	if req.Options.Parallel || req.Options.Batch != 0 || req.Options.Shards != 0 || req.Options.Workers != 0 {
		s.httpError(w, http.StatusBadRequest,
			"cluster queries pick execution per worker; explicit parallel/batch/shards/workers are not supported here")
		return
	}
	if req.Options.CountOnly {
		s.proxyCount(w, r, name, req.Query, mode)
		return
	}
	// The merged stream holds worker connections and buffers for its whole
	// life: it is exactly the resource the admission gate meters.
	if !s.admitStream(w, r) {
		return
	}
	defer s.admission.release()

	stream, err := s.cluster.Query(r.Context(), cluster.QuerySpec{Dataset: name, Query: req.Query, Mode: mode})
	if err != nil {
		if r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		s.clusterError(w, err)
		return
	}
	defer stream.Close()

	hdr := stream.Header
	media := negotiateEncoding(r.Header.Get("Accept"))
	enc, err := newAnswerEncoder(w, media, hdr.Arity)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("X-Ucq-Mode", hdr.Mode)
	w.Header().Set("X-Ucq-Cache", hdr.Cache)
	w.Header().Set("X-Ucq-Bind", hdr.Bind)
	w.Header().Set("X-Ucq-Dataset-Version", fmt.Sprint(hdr.DatasetVersion))
	w.Header().Set("X-Ucq-Scatter", hdr.Scatter)
	w.Header().Set("X-Ucq-Workers", fmt.Sprint(hdr.Workers))
	w.WriteHeader(http.StatusOK)

	start := time.Now()
	prev := start
	var firstAnswer, maxDelay time.Duration
	count := 0
	limited := false
	disconnected := false
drain:
	for chunk := range stream.C {
		now := time.Now()
		if count == 0 {
			firstAnswer = now.Sub(start)
		} else if d := now.Sub(prev); d > maxDelay {
			maxDelay = d
		}
		prev = now
		for _, t := range chunk.Tuples {
			if err := enc.appendTuple(t); err != nil {
				disconnected = true
				break drain
			}
			count++
			if req.Limit > 0 && count >= req.Limit {
				limited = true
				stream.Close()
				break drain
			}
		}
		if err := enc.flush(); err != nil {
			disconnected = true
			break
		}
	}
	if count == 0 {
		firstAnswer = time.Since(start)
	}
	s.stats.answersStreamed.Add(int64(count))
	s.stats.RecordTiming(firstAnswer, maxDelay)
	defer func() { s.stats.recordWire(media, count, enc.bytesOut()) }()
	if disconnected || r.Context().Err() != nil {
		s.stats.requestsCancelled.Add(1)
		return
	}
	if err := stream.Err(); err != nil && !limited {
		// The merge failed mid-stream: no trailer — the stream is visibly
		// truncated — but say why with a terminal error record.
		s.stats.errors.Add(1)
		_ = enc.streamError(err.Error())
		_ = enc.flush()
		return
	}
	_ = enc.trailer(Trailer{
		Done:           true,
		Count:          count,
		Mode:           hdr.Mode,
		Cache:          hdr.Cache,
		Dataset:        hdr.Dataset,
		DatasetVersion: hdr.DatasetVersion,
		Bind:           hdr.Bind,
		Scatter:        hdr.Scatter,
		Workers:        hdr.Workers,
	})
	_ = enc.flush()
	s.stats.streamsCompleted.Add(1)
}

// clusterSnapshot builds the /stats cluster section: the coordinator's
// own scatter counters plus every worker's full snapshot, namespaced per
// worker, with explicitly-labelled cross-worker totals for the counters
// that are otherwise misleadingly process-local (a coordinator streams
// merged answers but makes no auto decisions; its workers do).
func (s *Server) clusterSnapshot(ctx context.Context) *ClusterSnapshot {
	workerStats, workerErrs := s.cluster.WorkerStats(ctx)
	cs := &ClusterSnapshot{
		Workers:      s.cluster.Workers(),
		Scatter:      s.cluster.Totals(),
		WorkerStats:  workerStats,
		WorkerErrors: workerErrs,
	}
	for _, info := range s.cluster.Datasets() {
		cs.Datasets = append(cs.Datasets, DatasetInfo(info))
	}
	totals := struct {
		answers   int64
		decisions map[string]int64
	}{decisions: make(map[string]int64)}
	for _, raw := range workerStats {
		var snap struct {
			AnswersStreamed int64            `json:"answers_streamed"`
			DecisionModes   map[string]int64 `json:"decision_modes"`
		}
		if json.Unmarshal(raw, &snap) != nil {
			continue
		}
		totals.answers += snap.AnswersStreamed
		for k, v := range snap.DecisionModes {
			totals.decisions[k] += v
		}
	}
	cs.WorkerAnswersStreamedTotal = totals.answers
	cs.WorkerDecisionModesTotal = totals.decisions
	return cs
}
