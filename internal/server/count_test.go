package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// postCount posts to path and decodes the CountResponse.
func postCount(t *testing.T, url, path string, req QueryRequest) CountResponse {
	t.Helper()
	resp := do(t, http.MethodPost, url+path, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("POST %s: status %d (%s)", path, resp.StatusCode, er.Error)
	}
	var cr CountResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// TestCountOnlyQuery pins the count_only wire option on /query: the
// response is a single CountResponse whose count matches the streamed
// answer set, with the counting method reported.
func TestCountOnlyQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()

	cr := postCount(t, ts.URL, "/query", QueryRequest{
		Query:     example2,
		Relations: smallRelations(),
		Options:   QueryOptions{CountOnly: true},
	})
	if cr.Count != 6 {
		t.Errorf("count = %d, want 6", cr.Count)
	}
	if cr.Mode != "constant-delay" {
		t.Errorf("mode = %q, want constant-delay", cr.Mode)
	}
	if cr.Method != "count-answers" && cr.Method != "enumerate" {
		t.Errorf("method = %q", cr.Method)
	}

	// A single-branch free-connex query must take the counting-pass route:
	// no enumeration behind the count.
	cr = postCount(t, ts.URL, "/query", QueryRequest{
		Query:     "Q(x,y,w) <- R1(x,y), R2(y,w).",
		Relations: smallRelations(),
		Options:   QueryOptions{CountOnly: true},
	})
	if cr.Method != "count-answers" {
		t.Errorf("single-branch method = %q, want count-answers", cr.Method)
	}
	if cr.Count != 2 {
		t.Errorf("single-branch count = %d, want 2", cr.Count)
	}

	// Naive mode always enumerates to count.
	cr = postCount(t, ts.URL, "/query", QueryRequest{
		Query:     example2,
		Relations: smallRelations(),
		Options:   QueryOptions{Mode: "naive", CountOnly: true},
	})
	if cr.Method != "enumerate" || cr.Count != 6 {
		t.Errorf("naive count = %+v, want 6 via enumerate", cr)
	}
}

// TestDatasetCountEndpoint pins POST /datasets/{name}/count: same bind
// path as a dataset query (bind cache, version pinning), one JSON object
// back.
func TestDatasetCountEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	putDataset(t, ts.URL, "d", smallRelations())

	cr := postCount(t, ts.URL, "/datasets/d/count", QueryRequest{Query: example2})
	if cr.Count != 6 || cr.Dataset != "d" || cr.DatasetVersion != 1 {
		t.Fatalf("count response = %+v, want 6 answers from d v1", cr)
	}
	if cr.Bind != "miss" {
		t.Errorf("first count bind = %q, want miss", cr.Bind)
	}
	// Second identical count serves the bind from cache.
	cr = postCount(t, ts.URL, "/datasets/d/count", QueryRequest{Query: example2})
	if cr.Bind != "hit" || cr.Count != 6 {
		t.Errorf("second count = %+v, want bind=hit count=6", cr)
	}

	// count_only on the query endpoint behaves identically.
	cr = postCount(t, ts.URL, "/datasets/d/query", QueryRequest{
		Query:   example2,
		Options: QueryOptions{CountOnly: true},
	})
	if cr.Count != 6 || cr.Dataset != "d" {
		t.Errorf("count_only dataset query = %+v", cr)
	}

	// Errors still surface: unknown dataset is a 404.
	resp := do(t, http.MethodPost, ts.URL+"/datasets/nope/count", QueryRequest{Query: example2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("count on unknown dataset: status %d, want 404", resp.StatusCode)
	}
}

// TestDecisionModeStats pins the /stats decision counters: requests with
// no explicit execution knob run through the cost model and land in
// exactly one decision_modes bucket; explicit requests are not counted.
func TestDecisionModeStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	putDataset(t, ts.URL, "d", smallRelations())

	st := getStats(t, ts.URL)
	if n := st.DecisionModes["sequential"] + st.DecisionModes["parallel"] + st.DecisionModes["sharded"]; n != 0 {
		t.Fatalf("fresh server has %d decisions", n)
	}

	// Auto (no knobs): counted.
	queryDataset(t, ts.URL, "d", QueryRequest{Query: example2})
	// Explicit parallel: not counted.
	queryDataset(t, ts.URL, "d", QueryRequest{Query: example2, Options: QueryOptions{Parallel: true}})
	// Count endpoint binds run through the same decision path.
	postCount(t, ts.URL, "/datasets/d/count", QueryRequest{Query: example2})

	st = getStats(t, ts.URL)
	total := st.DecisionModes["sequential"] + st.DecisionModes["parallel"] + st.DecisionModes["sharded"]
	if total != 2 {
		t.Errorf("decision_modes total = %d (%+v), want 2 (two auto binds, one explicit)", total, st.DecisionModes)
	}
}
