package hypergraph

import (
	"strings"
	"testing"

	"repro/internal/cq"
)

func vs(vars ...cq.Variable) cq.VarSet { return cq.NewVarSet(vars...) }

func TestAcyclicPath(t *testing.T) {
	// R(x,z), S(z,y): a path, acyclic.
	h := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x,z), S(z,y)."))
	if !h.IsAcyclic() {
		t.Errorf("path hypergraph reported cyclic")
	}
}

func TestCyclicTriangle(t *testing.T) {
	h := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x,y), S(y,z), T(z,x)."))
	if h.IsAcyclic() {
		t.Errorf("triangle reported acyclic")
	}
}

func TestTriangleWithCoveringEdgeIsAcyclic(t *testing.T) {
	// Adding an edge covering the triangle makes it α-acyclic.
	h := FromVarSets(vs("x", "y"), vs("y", "z"), vs("z", "x"), vs("x", "y", "z"))
	if !h.IsAcyclic() {
		t.Errorf("covered triangle reported cyclic")
	}
}

func TestLargerCycles(t *testing.T) {
	// 4-cycle.
	h := FromVarSets(vs("a", "b"), vs("b", "c"), vs("c", "d"), vs("d", "a"))
	if h.IsAcyclic() {
		t.Errorf("4-cycle reported acyclic")
	}
	// 4-path.
	h2 := FromVarSets(vs("a", "b"), vs("b", "c"), vs("c", "d"))
	if !h2.IsAcyclic() {
		t.Errorf("4-path reported cyclic")
	}
}

func TestSingleEdgeAndDuplicates(t *testing.T) {
	h := FromVarSets(vs("x", "y", "z"))
	if !h.IsAcyclic() {
		t.Errorf("single edge cyclic")
	}
	dup := FromVarSets(vs("x", "y"), vs("x", "y"))
	if !dup.IsAcyclic() {
		t.Errorf("duplicate edges cyclic")
	}
}

func TestNeighborsAndEdgeHelpers(t *testing.T) {
	h := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x,z), S(z,y)."))
	if !h.Neighbors("x", "z") || h.Neighbors("x", "y") {
		t.Errorf("Neighbors wrong")
	}
	if got := h.NeighborSet("z"); !got.Equal(vs("x", "y", "z")) {
		t.Errorf("NeighborSet(z) = %v", got)
	}
	if got := h.EdgesWith("z"); len(got) != 2 {
		t.Errorf("EdgesWith(z) = %v", got)
	}
	if !h.HasEdgeCovering(vs("x", "z")) || h.HasEdgeCovering(vs("x", "y")) {
		t.Errorf("HasEdgeCovering wrong")
	}
	if !h.IsClique(vs("x", "z")) || h.IsClique(vs("x", "y")) {
		t.Errorf("IsClique wrong")
	}
	if got := h.Vertices(); !got.Equal(vs("x", "y", "z")) {
		t.Errorf("Vertices = %v", got)
	}
}

func TestJoinTreePath(t *testing.T) {
	h := FromVarSets(vs("a", "b"), vs("b", "c"), vs("c", "d"))
	jt, err := BuildJoinTree(h)
	if err != nil {
		t.Fatalf("BuildJoinTree: %v", err)
	}
	if err := jt.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := len(jt.PostOrder()); got != 3 {
		t.Errorf("post order covers %d nodes", got)
	}
}

func TestJoinTreeCyclicFails(t *testing.T) {
	h := FromVarSets(vs("x", "y"), vs("y", "z"), vs("z", "x"))
	if _, err := BuildJoinTree(h); err == nil {
		t.Errorf("join tree built for cyclic hypergraph")
	}
}

func TestJoinTreeStarAndVerifyCatchesBadTrees(t *testing.T) {
	h := FromVarSets(vs("a", "x"), vs("a", "y"), vs("a", "z"))
	jt, err := BuildJoinTree(h)
	if err != nil {
		t.Fatalf("BuildJoinTree: %v", err)
	}
	// Sabotage: make edges 1 and 2 both roots.
	bad := &JoinTree{H: h, Root: jt.Root, Parent: append([]int(nil), jt.Parent...)}
	for i := range bad.Parent {
		bad.Parent[i] = -1
	}
	if err := bad.Verify(); err == nil {
		t.Errorf("Verify accepted forest")
	}
	// Sabotage: break running intersection by attaching {a,x} under a node
	// not sharing 'a'... all share a, so instead build disconnected holders
	// via a 4-edge graph.
	h2 := FromVarSets(vs("a", "b"), vs("b", "c"), vs("a", "d"))
	bad2 := &JoinTree{H: h2, Root: 1, Parent: []int{1, -1, 1}}
	// Edge 2 {a,d} hangs under edge 1 {b,c}; 'a' appears in edges 0 and 2
	// which are not connected through holders.
	if err := bad2.Verify(); err == nil || !strings.Contains(err.Error(), "running intersection") {
		t.Errorf("Verify missed running intersection violation: %v", err)
	}
}

func TestIsSConnex(t *testing.T) {
	// Q(x,y) <- R(x,z),S(z,y): acyclic, but H ∪ {x,y} is a triangle.
	h := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x,z), S(z,y)."))
	if h.IsSConnex(vs("x", "y")) {
		t.Errorf("matrix-multiplication query reported free-connex")
	}
	if !h.IsSConnex(vs("x", "z")) {
		t.Errorf("{x,z}-connexity misreported")
	}
	// Full acyclic query is trivially free-connex.
	h2 := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x,y)."))
	if !h2.IsSConnex(vs("x", "y")) {
		t.Errorf("full query not free-connex")
	}
	// Cyclic base is never S-connex.
	h3 := FromCQ(cq.MustParseCQ("Q(x) <- R(x,y), S(y,z), T(z,x)."))
	if h3.IsSConnex(vs("x")) {
		t.Errorf("cyclic query reported S-connex")
	}
}

// TestFigure1ConnexTree reproduces Figure 1 of the paper: the hypergraph H
// with edges {v,w}, {w,y,z}, {x,y} has an ext-{x,y,z}-connex tree.
func TestFigure1ConnexTree(t *testing.T) {
	h := FromVarSets(vs("v", "w"), vs("w", "y", "z"), vs("x", "y"))
	s := vs("x", "y", "z")
	if !h.IsSConnex(s) {
		t.Fatalf("Figure 1 hypergraph not {x,y,z}-connex")
	}
	ct, err := BuildConnexTree(h, s)
	if err != nil {
		t.Fatalf("BuildConnexTree: %v", err)
	}
	if err := ct.Verify(h); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// The S-part must cover exactly {x,y,z}; the paper's tree uses the top
	// nodes {y,z} and {x,y}.
	topVars := make(cq.VarSet)
	for _, i := range ct.TopNodes() {
		topVars.AddAll(ct.Nodes[i].Vars)
	}
	if !topVars.Equal(s) {
		t.Errorf("top part covers %v, want %v", topVars, s)
	}
}

func TestConnexTreeRejectsNonConnex(t *testing.T) {
	h := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x,z), S(z,y)."))
	if _, err := BuildConnexTree(h, vs("x", "y")); err == nil {
		t.Errorf("connex tree built for non-connex S")
	}
	hc := FromCQ(cq.MustParseCQ("Q(x) <- R(x,y), S(y,z), T(z,x)."))
	if _, err := BuildConnexTree(hc, vs("x")); err == nil {
		t.Errorf("connex tree built for cyclic hypergraph")
	}
	if _, err := BuildConnexTree(h, vs("x", "nope")); err == nil {
		t.Errorf("connex tree accepted S with unknown variables")
	}
}

func TestConnexTreeDisconnectedQuery(t *testing.T) {
	// Q(x,y) <- R(x), S(y): S-part is two singleton tops.
	h := FromCQ(cq.MustParseCQ("Q(x,y) <- R(x), S(y)."))
	ct, err := BuildConnexTree(h, vs("x", "y"))
	if err != nil {
		t.Fatalf("BuildConnexTree: %v", err)
	}
	if len(ct.TopNodes()) < 2 {
		t.Errorf("expected at least two top nodes, got %d", len(ct.TopNodes()))
	}
}

func TestConnexTreeBooleanQuery(t *testing.T) {
	h := FromCQ(cq.MustParseCQ("Q() <- R(x,z), S(z,y)."))
	ct, err := BuildConnexTree(h, vs())
	if err != nil {
		t.Fatalf("BuildConnexTree: %v", err)
	}
	for _, i := range ct.TopNodes() {
		if len(ct.Nodes[i].Vars) != 0 {
			t.Errorf("boolean query top node has variables %v", ct.Nodes[i].Vars)
		}
	}
}

func TestConnexTreeOnPaperExample2(t *testing.T) {
	// Q2(x,y,w) <- R1(x,y), R2(y,w) from Example 2 is free-connex; its
	// {x,y,w}-connex tree exists (Figure 2, left).
	q2 := cq.MustParseCQ("Q2(x,y,w) <- R1(x,y), R2(y,w).")
	h := FromCQ(q2)
	ct, err := BuildConnexTree(h, q2.Free())
	if err != nil {
		t.Fatalf("BuildConnexTree: %v", err)
	}
	if err := ct.Verify(h); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestFreePathsMatrixMultiplication(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y) <- R(x,z), S(z,y).")
	paths := FreePaths(FromCQ(q), q.Free())
	if len(paths) != 1 {
		t.Fatalf("free paths = %v", paths)
	}
	if paths[0].String() != "(x,z,y)" {
		t.Errorf("free path = %v", paths[0])
	}
	a, b := paths[0].Endpoints()
	if a != "x" || b != "y" {
		t.Errorf("endpoints = %s,%s", a, b)
	}
	if len(paths[0].Interior()) != 1 || paths[0].Interior()[0] != "z" {
		t.Errorf("interior = %v", paths[0].Interior())
	}
	if !paths[0].VarSet().Equal(vs("x", "y", "z")) {
		t.Errorf("varset = %v", paths[0].VarSet())
	}
}

func TestFreePathsExample13Q1(t *testing.T) {
	// Q1 of Example 13 has the free-path (x, z1, z2, z3, y).
	q := cq.MustParseCQ("Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).")
	paths := FreePaths(FromCQ(q), q.Free())
	found := false
	for _, p := range paths {
		if p.String() == "(x,z1,z2,z3,y)" {
			found = true
		}
	}
	if !found {
		t.Errorf("free path (x,z1,z2,z3,y) not found; got %v", paths)
	}
}

func TestFreeConnexHasNoFreePath(t *testing.T) {
	// For acyclic CQs: free-connex iff no free-path.
	cases := []struct {
		src  string
		want bool // has free path
	}{
		{"Q(x,y,w) <- R1(x,y), R2(y,w).", false},
		{"Q(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).", true},
		{"Q(x,y) <- R(x,z), S(z,y).", true},
		{"Q(x,z) <- R(x,z), S(z,y).", false},
		{"Q(x) <- R(x,y), S(y).", false},
	}
	for _, tc := range cases {
		q := cq.MustParseCQ(tc.src)
		h := FromCQ(q)
		got := HasFreePath(h, q.Free())
		if got != tc.want {
			t.Errorf("%s: HasFreePath = %v, want %v", tc.src, got, tc.want)
		}
		// Cross-check against the acyclicity characterisation.
		if h.IsAcyclic() {
			fc := h.IsSConnex(q.Free())
			if fc == got {
				t.Errorf("%s: free-connex=%v and free-path=%v should disagree", tc.src, fc, got)
			}
		}
	}
}

func TestFreePathsNoDuplicateDirections(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y) <- R(x,z), S(z,y).")
	paths := FreePaths(FromCQ(q), q.Free())
	seen := make(map[string]bool)
	for _, p := range paths {
		rev := make(FreePath, len(p))
		for i, v := range p {
			rev[len(p)-1-i] = v
		}
		if seen[rev.String()] {
			t.Errorf("path %v reported in both directions", p)
		}
		seen[p.String()] = true
	}
}

func TestSubsequentPAtoms(t *testing.T) {
	// Example 22: Q1(x,y,t) <- R1(x,w,t), R2(y,w,t): free-path (x,w,y),
	// and R1, R2 are subsequent P-atoms sharing t.
	q := cq.MustParseCQ("Q1(x,y,t) <- R1(x,w,t), R2(y,w,t).")
	h := FromCQ(q)
	paths := FreePaths(h, q.Free())
	if len(paths) != 1 || paths[0].String() != "(x,w,y)" {
		t.Fatalf("paths = %v", paths)
	}
	pairs := SubsequentPAtoms(h, paths[0])
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	shared := h.Edges[pairs[0][0]].Vars.Intersect(h.Edges[pairs[0][1]].Vars)
	if !shared.Equal(vs("w", "t")) {
		t.Errorf("shared = %v", shared)
	}
}

func TestWithEdgeDoesNotMutate(t *testing.T) {
	h := FromVarSets(vs("x", "y"))
	h2 := h.WithEdge(vs("y", "z"))
	if len(h.Edges) != 1 || len(h2.Edges) != 2 {
		t.Errorf("WithEdge mutated original or failed to extend")
	}
	if h2.Edges[1].ID != -1 {
		t.Errorf("synthetic edge ID = %d", h2.Edges[1].ID)
	}
}

func TestStringRenderings(t *testing.T) {
	h := FromVarSets(vs("b", "a"), vs("c"))
	if got := h.String(); got != "[{a,b} {c}]" {
		t.Errorf("String = %q", got)
	}
	jt, err := BuildJoinTree(FromVarSets(vs("a", "b"), vs("b", "c")))
	if err != nil {
		t.Fatalf("join tree: %v", err)
	}
	if !strings.Contains(jt.String(), "{a,b}") {
		t.Errorf("join tree string = %q", jt.String())
	}
	ct, err := BuildConnexTree(FromVarSets(vs("a", "b")), vs("a"))
	if err != nil {
		t.Fatalf("connex tree: %v", err)
	}
	if !strings.Contains(ct.String(), "*{a}") {
		t.Errorf("connex tree string = %q", ct.String())
	}
}
