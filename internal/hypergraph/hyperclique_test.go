package hypergraph

import (
	"testing"

	"repro/internal/cq"
)

func TestIsKUniform(t *testing.T) {
	h := FromVarSets(vs("a", "b"), vs("b", "c"))
	if !h.IsKUniform(2) || h.IsKUniform(3) {
		t.Errorf("uniformity wrong")
	}
	mixed := FromVarSets(vs("a", "b"), vs("b", "c", "d"))
	if mixed.IsKUniform(2) {
		t.Errorf("mixed arity reported uniform")
	}
	if (&Hypergraph{}).IsKUniform(2) {
		t.Errorf("empty hypergraph reported uniform")
	}
}

func TestFindHypercliqueTetrahedron(t *testing.T) {
	// Tetra⟨3⟩: the 2-uniform triangle is a 3-hyperclique.
	tri := FromVarSets(vs("x", "y"), vs("y", "z"), vs("z", "x"))
	found, ok := tri.FindHyperclique(3)
	if !ok || !found.Equal(vs("x", "y", "z")) {
		t.Errorf("triangle hyperclique = %v, %v", found, ok)
	}
	// A path has none.
	path := FromVarSets(vs("x", "y"), vs("y", "z"))
	if _, ok := path.FindHyperclique(3); ok {
		t.Errorf("path reported a hyperclique")
	}
}

func TestFindHyperclique3Uniform(t *testing.T) {
	// Tetra⟨4⟩: all four 3-subsets of {a,b,c,d}.
	h := FromVarSets(
		vs("a", "b", "c"), vs("a", "b", "d"),
		vs("a", "c", "d"), vs("b", "c", "d"),
	)
	found, ok := h.FindHyperclique(4)
	if !ok || !found.Equal(vs("a", "b", "c", "d")) {
		t.Errorf("hyperclique = %v, %v", found, ok)
	}
	// Remove one face: no hyperclique.
	h2 := FromVarSets(vs("a", "b", "c"), vs("a", "b", "d"), vs("a", "c", "d"))
	if _, ok := h2.FindHyperclique(4); ok {
		t.Errorf("incomplete tetrahedron reported a hyperclique")
	}
}

// TestExample39HypercliqueClaim verifies the paper's structural claim in
// Example 39: extending Q1 with the provided atom R(x1,x2,x3) "removes"
// the cycle but introduces the hyperclique {x1,x2,x3,x4}.
func TestExample39HypercliqueClaim(t *testing.T) {
	q1 := cq.MustParseCQ("Q1(x2,x3,x4) <- R1(x2,x3,x4), R2(x1,x3,x4), R3(x1,x2,x4).")
	h := FromCQ(q1)
	if h.IsAcyclic() {
		t.Fatalf("Example 39's Q1 should be cyclic")
	}
	// Add the provided atom {x1,x2,x3}: the hypergraph becomes 3-uniform
	// and contains the 4-hyperclique, so it stays cyclic.
	ext := h.WithEdge(vs("x1", "x2", "x3"))
	if ext.IsAcyclic() {
		t.Fatalf("extension should remain cyclic")
	}
	found, ok := ext.FindHyperclique(4)
	if !ok || !found.Equal(vs("x1", "x2", "x3", "x4")) {
		t.Errorf("hyperclique = %v, %v; the paper predicts {x1,x2,x3,x4}", found, ok)
	}
}

func TestIsHypercliqueEdgeCases(t *testing.T) {
	h := FromVarSets(vs("x", "y"), vs("y", "z"), vs("z", "x"))
	if h.IsHyperclique(vs("x", "y"), 2) {
		t.Errorf("set of size k accepted as hyperclique")
	}
	if h.IsHyperclique(vs("x", "y", "w"), 2) {
		t.Errorf("non-clique accepted")
	}
	if _, ok := FromVarSets(vs("a", "b")).FindHyperclique(3); ok {
		t.Errorf("too few vertices produced a hyperclique")
	}
}
