package hypergraph_test

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// TestRandomConnexTrees builds ext-S-connex trees for random S-connex
// queries and verifies every one of them: join tree of an inclusive
// extension, running intersection, top covering exactly S.
func TestRandomConnexTrees(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 60
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < trials; trial++ {
		q, s := workload.RandomAcyclicCQ(rng)
		h := hypergraph.FromCQ(q)
		ct, err := hypergraph.BuildConnexTree(h, s)
		if err != nil {
			t.Fatalf("trial %d: hypergraph.BuildConnexTree(%s, %v): %v", trial, q, s, err)
		}
		if err := ct.Verify(h); err != nil {
			t.Fatalf("trial %d: Verify(%s, %v): %v", trial, q, s, err)
		}
	}
}

// TestRandomJoinTrees verifies the GYO join tree construction on random
// acyclic hypergraphs.
func TestRandomJoinTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for trial := 0; trial < 200; trial++ {
		q, _ := workload.RandomAcyclicCQ(rng)
		h := hypergraph.FromCQ(q)
		if !h.IsAcyclic() {
			t.Fatalf("trial %d: generator produced a cyclic query %s", trial, q)
		}
		jt, err := hypergraph.BuildJoinTree(h)
		if err != nil {
			t.Fatalf("trial %d: BuildJoinTree: %v", trial, err)
		}
		if err := jt.Verify(); err != nil {
			t.Fatalf("trial %d: Verify: %v", trial, err)
		}
	}
}

// TestAcyclicityInvariantUnderPermutation checks that edge order never
// changes the acyclicity verdict (GYO is Church–Rosser).
func TestAcyclicityInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	bases := []*hypergraph.Hypergraph{
		hypergraph.FromVarSets(vs("a", "b"), vs("b", "c"), vs("c", "d")),
		hypergraph.FromVarSets(vs("a", "b"), vs("b", "c"), vs("c", "a")),
		hypergraph.FromVarSets(vs("a", "b", "c"), vs("b", "c", "d"), vs("c", "d", "a"), vs("a", "b", "d")),
		hypergraph.FromVarSets(vs("x"), vs("x", "y"), vs("y", "z"), vs("w")),
	}
	for bi, base := range bases {
		want := base.IsAcyclic()
		for p := 0; p < 20; p++ {
			perm := rng.Perm(len(base.Edges))
			shuffled := &hypergraph.Hypergraph{}
			for _, i := range perm {
				shuffled.Edges = append(shuffled.Edges, hypergraph.Edge{ID: base.Edges[i].ID, Vars: base.Edges[i].Vars.Clone()})
			}
			if got := shuffled.IsAcyclic(); got != want {
				t.Fatalf("base %d: permutation changed verdict: %v vs %v", bi, got, want)
			}
		}
	}
}

// TestSConnexMonotoneUniversal confirms two structural facts used by the
// generator and the engine: every acyclic hypergraph is ∅-connex and
// V-connex (full variable set).
func TestSConnexMonotoneUniversal(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 100; trial++ {
		q, _ := workload.RandomAcyclicCQ(rng)
		h := hypergraph.FromCQ(q)
		if !h.IsSConnex(cq.NewVarSet()) {
			t.Fatalf("trial %d: not ∅-connex: %s", trial, q)
		}
		if !h.IsSConnex(h.Vertices()) {
			t.Fatalf("trial %d: not V-connex: %s", trial, q)
		}
	}
}

// vs builds a variable set (local copy of the internal test helper).
func vs(vars ...cq.Variable) cq.VarSet { return cq.NewVarSet(vars...) }
