// Package hypergraph implements the hypergraph machinery behind the paper's
// structural notions: α-acyclicity via GYO (Graham/Yu–Özsoyoğlu) reduction,
// join-tree construction, S-connexity, ext-S-connex trees, free-paths and
// (hyper)clique helpers.
//
// The hypergraph H(Q) of a CQ has the query's variables as vertices and one
// edge per atom (Section 2 of the paper). A query is acyclic iff H(Q) has a
// join tree; it is S-connex iff both H(Q) and H(Q) ∪ {S} are acyclic (the
// Brault-Baron equivalence the paper cites), and free-connex iff it is
// free(Q)-connex.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
)

// Edge is a hyperedge: a set of variables plus a caller-supplied identifier
// (for edges built from a query, the atom index).
type Edge struct {
	// ID identifies the edge for provenance; FromCQ uses the atom index.
	// Synthetic edges use negative IDs.
	ID int
	// Vars is the set of vertices spanned by the edge.
	Vars cq.VarSet
}

// Hypergraph is a multiset of hyperedges. The vertex set is implicit: the
// union of all edges.
type Hypergraph struct {
	Edges []Edge
}

// FromCQ builds H(Q): one edge per atom, vertices are the atom's variables.
// Virtual atoms contribute edges like any other atom (union extensions are
// judged on their full hypergraph).
func FromCQ(q *cq.CQ) *Hypergraph {
	h := &Hypergraph{Edges: make([]Edge, len(q.Atoms))}
	for i, a := range q.Atoms {
		h.Edges[i] = Edge{ID: i, Vars: a.VarSet()}
	}
	return h
}

// FromVarSets builds a hypergraph from explicit edge variable sets, with
// IDs 0..n-1.
func FromVarSets(sets ...cq.VarSet) *Hypergraph {
	h := &Hypergraph{Edges: make([]Edge, len(sets))}
	for i, s := range sets {
		h.Edges[i] = Edge{ID: i, Vars: s.Clone()}
	}
	return h
}

// Clone returns a deep copy.
func (h *Hypergraph) Clone() *Hypergraph {
	out := &Hypergraph{Edges: make([]Edge, len(h.Edges))}
	for i, e := range h.Edges {
		out.Edges[i] = Edge{ID: e.ID, Vars: e.Vars.Clone()}
	}
	return out
}

// Vertices returns the union of all edges.
func (h *Hypergraph) Vertices() cq.VarSet {
	s := make(cq.VarSet)
	for _, e := range h.Edges {
		s.AddAll(e.Vars)
	}
	return s
}

// WithEdge returns a copy of h with one extra edge (ID -1) holding vars.
// It is the H ∪ {S} construction used throughout the paper.
func (h *Hypergraph) WithEdge(vars cq.VarSet) *Hypergraph {
	out := h.Clone()
	out.Edges = append(out.Edges, Edge{ID: -1, Vars: vars.Clone()})
	return out
}

// Neighbors reports whether u and v share an edge. Every vertex of the
// hypergraph neighbors itself.
func (h *Hypergraph) Neighbors(u, v cq.Variable) bool {
	for _, e := range h.Edges {
		if e.Vars[u] && e.Vars[v] {
			return true
		}
	}
	return false
}

// NeighborSet returns all vertices sharing an edge with v, including v
// itself when v occurs in the hypergraph.
func (h *Hypergraph) NeighborSet(v cq.Variable) cq.VarSet {
	s := make(cq.VarSet)
	for _, e := range h.Edges {
		if e.Vars[v] {
			s.AddAll(e.Vars)
		}
	}
	return s
}

// EdgesWith returns the indices of edges containing v.
func (h *Hypergraph) EdgesWith(v cq.Variable) []int {
	var out []int
	for i, e := range h.Edges {
		if e.Vars[v] {
			out = append(out, i)
		}
	}
	return out
}

// HasEdgeCovering reports whether some edge contains every variable in s.
func (h *Hypergraph) HasEdgeCovering(s cq.VarSet) bool {
	for _, e := range h.Edges {
		if e.Vars.ContainsAll(s) {
			return true
		}
	}
	return false
}

// IsClique reports whether the given vertices are pairwise neighbors.
func (h *Hypergraph) IsClique(s cq.VarSet) bool {
	vs := s.Sorted()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !h.Neighbors(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// String renders the edge sets in ID order.
func (h *Hypergraph) String() string {
	parts := make([]string, len(h.Edges))
	for i, e := range h.Edges {
		parts[i] = e.Vars.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// gyoState is the working state of a GYO reduction: per-edge current vertex
// sets, with removed edges marked.
type gyoState struct {
	cur   []cq.VarSet
	alive []bool
	n     int // alive count
}

func newGYOState(h *Hypergraph) *gyoState {
	st := &gyoState{
		cur:   make([]cq.VarSet, len(h.Edges)),
		alive: make([]bool, len(h.Edges)),
		n:     len(h.Edges),
	}
	for i, e := range h.Edges {
		st.cur[i] = e.Vars.Clone()
		st.alive[i] = true
	}
	return st
}

// occurrences counts alive edges containing v.
func (st *gyoState) occurrences(v cq.Variable) int {
	n := 0
	for i, s := range st.cur {
		if st.alive[i] && s[v] {
			n++
		}
	}
	return n
}

// GYOStep is one reduction step, recorded for join-tree reconstruction.
type GYOStep struct {
	// Kind is "vertex" (a vertex occurring in one edge was removed) or
	// "edge" (an edge contained in another was removed).
	Kind string
	// Edge is the index of the affected edge.
	Edge int
	// Vertex is set for vertex steps.
	Vertex cq.Variable
	// Into is the absorbing edge index for edge steps.
	Into int
}

// Reduce runs the GYO reduction to a fixpoint and reports whether the
// hypergraph is acyclic (reduces to at most one edge, possibly empty), along
// with the step log. The reduction is Church–Rosser, so any maximal run
// decides acyclicity.
func (h *Hypergraph) Reduce() (acyclic bool, steps []GYOStep) {
	st := newGYOState(h)
	for {
		progressed := false
		// Rule 1: remove a vertex that occurs in at most one alive edge.
		for i, s := range st.cur {
			if !st.alive[i] {
				continue
			}
			for v := range s {
				if st.occurrences(v) <= 1 {
					delete(s, v)
					steps = append(steps, GYOStep{Kind: "vertex", Edge: i, Vertex: v})
					progressed = true
				}
			}
		}
		// Rule 2: remove an edge whose vertex set is contained in another
		// alive edge (empty edges are contained in any edge).
		for i := range st.cur {
			if !st.alive[i] {
				continue
			}
			for j := range st.cur {
				if i == j || !st.alive[j] {
					continue
				}
				if st.cur[j].ContainsAll(st.cur[i]) {
					st.alive[i] = false
					st.n--
					steps = append(steps, GYOStep{Kind: "edge", Edge: i, Into: j})
					progressed = true
					break
				}
			}
		}
		if st.n <= 1 {
			return true, steps
		}
		if !progressed {
			return false, steps
		}
	}
}

// IsAcyclic reports α-acyclicity.
func (h *Hypergraph) IsAcyclic() bool {
	ok, _ := h.Reduce()
	return ok
}

// IsSConnex reports whether the hypergraph is S-connex: both H and H ∪ {S}
// are acyclic. For S = free(Q) this is free-connexity.
func (h *Hypergraph) IsSConnex(s cq.VarSet) bool {
	return h.IsAcyclic() && h.WithEdge(s).IsAcyclic()
}

// JoinTree is a rooted join tree over the edges of a hypergraph: Parent[i]
// is the parent edge index of edge i, or -1 for the root. The running
// intersection property holds: for every vertex v, the edges containing v
// form a connected subtree.
type JoinTree struct {
	H      *Hypergraph
	Root   int
	Parent []int
}

// BuildJoinTree constructs a join tree, or returns an error when the
// hypergraph is cyclic. Edges whose vertex set is empty attach to the root.
func BuildJoinTree(h *Hypergraph) (*JoinTree, error) {
	n := len(h.Edges)
	if n == 0 {
		return nil, fmt.Errorf("hypergraph: cannot build a join tree with no edges")
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2 // unresolved
	}
	st := newGYOState(h)
	// Ear removal: an edge e is an ear with witness f when every vertex of
	// e that occurs in another alive edge also occurs in f. Removing ears
	// until one edge remains yields a join tree with parent[e] = f.
	for st.n > 1 {
		earFound := false
		for i := range st.cur {
			if !st.alive[i] {
				continue
			}
			// Shared vertices of i: those occurring in another alive edge.
			shared := make(cq.VarSet)
			for v := range st.cur[i] {
				if st.occurrences(v) > 1 {
					shared.Add(v)
				}
			}
			for j := range st.cur {
				if i == j || !st.alive[j] {
					continue
				}
				if st.cur[j].ContainsAll(shared) {
					parent[i] = j
					st.alive[i] = false
					st.n--
					earFound = true
					break
				}
			}
			if earFound {
				break
			}
		}
		if !earFound {
			return nil, fmt.Errorf("hypergraph: cyclic hypergraph has no join tree")
		}
	}
	root := -1
	for i := range st.alive {
		if st.alive[i] {
			root = i
			parent[i] = -1
		}
	}
	t := &JoinTree{H: h, Root: root, Parent: parent}
	if err := t.Verify(); err != nil {
		return nil, fmt.Errorf("hypergraph: internal error: constructed join tree invalid: %w", err)
	}
	return t, nil
}

// Children returns a child-list representation of the tree.
func (t *JoinTree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// PostOrder returns the edge indices in post-order (children before
// parents); the root is last.
func (t *JoinTree) PostOrder() []int {
	ch := t.Children()
	out := make([]int, 0, len(t.Parent))
	var visit func(int)
	visit = func(i int) {
		for _, c := range ch[i] {
			visit(c)
		}
		out = append(out, i)
	}
	visit(t.Root)
	return out
}

// Verify checks the running intersection property and tree shape.
func (t *JoinTree) Verify() error {
	n := len(t.H.Edges)
	if len(t.Parent) != n {
		return fmt.Errorf("parent array has %d entries for %d edges", len(t.Parent), n)
	}
	roots := 0
	for i, p := range t.Parent {
		switch {
		case p == -1:
			roots++
		case p < 0 || p >= n:
			return fmt.Errorf("edge %d has invalid parent %d", i, p)
		}
	}
	if roots != 1 {
		return fmt.Errorf("join tree has %d roots", roots)
	}
	// Reachability (no cycles in parent pointers).
	if got := len(t.PostOrder()); got != n {
		return fmt.Errorf("join tree reaches %d of %d edges", got, n)
	}
	// Running intersection: for every vertex, the set of edges containing
	// it must induce a connected subgraph of the tree.
	for v := range t.H.Vertices() {
		if !t.connectedOn(v) {
			return fmt.Errorf("vertex %s violates the running intersection property", v)
		}
	}
	return nil
}

// connectedOn reports whether the edges containing v form a connected
// subtree.
func (t *JoinTree) connectedOn(v cq.Variable) bool {
	holders := t.H.EdgesWith(v)
	if len(holders) <= 1 {
		return true
	}
	in := make(map[int]bool, len(holders))
	for _, i := range holders {
		in[i] = true
	}
	// Walk up from each holder; for connectivity in a tree it suffices that
	// all holders share a single "highest" holder: climb from each holder
	// through holder-nodes only and check all reach the same top.
	top := -2
	for _, i := range holders {
		j := i
		for t.Parent[j] >= 0 && in[t.Parent[j]] {
			j = t.Parent[j]
		}
		if top == -2 {
			top = j
		} else if top != j {
			return false
		}
	}
	return true
}

// String renders the tree as indented edge sets.
func (t *JoinTree) String() string {
	var b strings.Builder
	ch := t.Children()
	var rec func(i, depth int)
	rec = func(i, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(t.H.Edges[i].Vars.String())
		b.WriteByte('\n')
		order := append([]int(nil), ch[i]...)
		sort.Ints(order)
		for _, c := range order {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}
