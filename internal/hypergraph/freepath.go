package hypergraph

import (
	"strings"

	"repro/internal/cq"
)

// FreePath is a free-path (x, z1, ..., zk, y) of a CQ (Section 2 of the
// paper): a chordless path in H(Q) whose endpoints are free and whose
// interior variables are existential, with k ≥ 1.
type FreePath []cq.Variable

// Endpoints returns the first and last variables of the path.
func (p FreePath) Endpoints() (cq.Variable, cq.Variable) {
	return p[0], p[len(p)-1]
}

// Interior returns z1..zk.
func (p FreePath) Interior() []cq.Variable {
	return p[1 : len(p)-1]
}

// VarSet returns the variables of the path.
func (p FreePath) VarSet() cq.VarSet {
	s := make(cq.VarSet, len(p))
	for _, v := range p {
		s[v] = true
	}
	return s
}

// String renders the path as (x,z,y).
func (p FreePath) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// FreePaths enumerates every free-path of the hypergraph with respect to the
// set of free variables. Paths are reported once (not once per direction):
// the lexicographically smaller endpoint comes first. The search is a DFS
// over chordless extensions; query hypergraphs are constant-size so the
// worst-case exponential cost is irrelevant in data complexity.
func FreePaths(h *Hypergraph, free cq.VarSet) []FreePath {
	var out []FreePath
	vertices := h.Vertices().Sorted()
	var path []cq.Variable

	var extend func()
	extend = func() {
		last := path[len(path)-1]
		for _, w := range vertices {
			if !h.Neighbors(last, w) || w == last {
				continue
			}
			// Chordless: w must not neighbor any path vertex except last.
			chord := false
			for _, u := range path[:len(path)-1] {
				if u == w || h.Neighbors(u, w) {
					chord = true
					break
				}
			}
			if chord {
				continue
			}
			if free[w] {
				// Endpoint found; interior is non-empty and existential by
				// construction. Report each undirected path once.
				if len(path) >= 2 && path[0] < w {
					p := make(FreePath, len(path)+1)
					copy(p, path)
					p[len(path)] = w
					out = append(out, p)
				}
				continue
			}
			path = append(path, w)
			extend()
			path = path[:len(path)-1]
		}
	}

	for _, x := range vertices {
		if !free[x] {
			continue
		}
		path = append(path[:0], x)
		extend()
	}
	return out
}

// HasFreePath reports whether at least one free-path exists. For an acyclic
// CQ this is equivalent to not being free-connex (Bagan et al., cited as
// part of Section 2).
func HasFreePath(h *Hypergraph, free cq.VarSet) bool {
	return len(FreePaths(h, free)) > 0
}

// SubsequentPAtoms returns the pairs of edge indices (e1, e2) that are
// subsequent P-atoms for the path P (Definition 23): e1 contains
// {P[i-1], P[i]} and e2 contains {P[i], P[i+1]} for some interior position i.
func SubsequentPAtoms(h *Hypergraph, p FreePath) [][2]int {
	var out [][2]int
	for i := 1; i+1 < len(p); i++ {
		for e1, edge1 := range h.Edges {
			if !edge1.Vars[p[i-1]] || !edge1.Vars[p[i]] {
				continue
			}
			for e2, edge2 := range h.Edges {
				if e1 == e2 {
					continue
				}
				if edge2.Vars[p[i]] && edge2.Vars[p[i+1]] {
					out = append(out, [2]int{e1, e2})
				}
			}
		}
	}
	return out
}
