package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
)

// ConnexNode is a node of an ext-S-connex tree. Nodes are either original
// atoms (AtomEdge ≥ 0, Vars = the atom's variables) or top nodes: members of
// the inclusive extension that together span exactly S (IsTop true, Vars ⊆ S,
// Vars a subset of the source atom's variables).
type ConnexNode struct {
	Vars cq.VarSet
	// AtomEdge is the hypergraph edge index the node stems from, or -1 for
	// deduplicated top nodes that merge several atoms' projections.
	AtomEdge int
	IsTop    bool
}

// ConnexTree is an ext-S-connex tree for a hypergraph H and a variable set
// S (Section 2, Figure 1 of the paper): a join tree of an inclusive
// extension of H whose top nodes form a connected subtree containing exactly
// the variables S.
type ConnexTree struct {
	S      cq.VarSet
	Nodes  []ConnexNode
	Root   int
	Parent []int
}

// elimState mirrors the GYO reduction but freezes the S edge: atoms are
// projected (solo existential vertices removed), absorbed into other atoms,
// or absorbed "into S" becoming top nodes. This is the schema-level twin of
// the data-level elimination engine in internal/yannakakis.
type elimState struct {
	cur   []cq.VarSet
	alive []bool
	n     int
}

// BuildConnexTree constructs an ext-S-connex tree, or returns an error when
// H is not S-connex. The construction runs the GYO reduction of H ∪ {S} with
// the S edge frozen:
//
//   - a vertex outside S occurring in a single alive atom is projected away;
//   - an atom whose current set is contained in another alive atom's current
//     set is absorbed into it (it hangs below the absorber in the tree);
//   - an atom whose current set is contained in S becomes a top node.
//
// If H ∪ {S} is acyclic this terminates with every atom absorbed (if the
// only available GYO move touched the frozen S edge, the join tree of the
// residual graph would need a second leaf besides S, and any non-S leaf
// admits one of the three moves). The distinct top sets form an acyclic
// hypergraph whose join tree becomes the connected S-part; each atom hangs
// below its absorber or its top node. The result is verified before being
// returned.
func BuildConnexTree(h *Hypergraph, s cq.VarSet) (*ConnexTree, error) {
	if !h.Vertices().ContainsAll(s) {
		return nil, fmt.Errorf("hypergraph: S %v contains variables outside the hypergraph", s)
	}
	if !h.IsAcyclic() {
		return nil, fmt.Errorf("hypergraph: not S-connex: hypergraph is cyclic")
	}
	if !h.WithEdge(s).IsAcyclic() {
		return nil, fmt.Errorf("hypergraph: not S-connex: H ∪ {S} is cyclic")
	}

	st := &elimState{
		cur:   make([]cq.VarSet, len(h.Edges)),
		alive: make([]bool, len(h.Edges)),
		n:     len(h.Edges),
	}
	for i, e := range h.Edges {
		st.cur[i] = e.Vars.Clone()
		st.alive[i] = true
	}

	// absorbedInto[i] = j when atom i was absorbed into atom j; topOf[i] is
	// the projected set when atom i became a top node.
	absorbedInto := make([]int, len(h.Edges))
	topOf := make([]cq.VarSet, len(h.Edges))
	for i := range absorbedInto {
		absorbedInto[i] = -1
	}

	occurrences := func(v cq.Variable) int {
		n := 0
		for i, cs := range st.cur {
			if st.alive[i] && cs[v] {
				n++
			}
		}
		return n
	}

	for st.n > 0 {
		progressed := false
		// Rule 1: project solo existential vertices.
		for i, cs := range st.cur {
			if !st.alive[i] {
				continue
			}
			for v := range cs {
				if !s[v] && occurrences(v) <= 1 {
					delete(cs, v)
					progressed = true
				}
			}
		}
		// Rule 2: absorb an atom into another atom.
		for i := range st.cur {
			if !st.alive[i] {
				continue
			}
			for j := range st.cur {
				if i == j || !st.alive[j] {
					continue
				}
				if st.cur[j].ContainsAll(st.cur[i]) {
					absorbedInto[i] = j
					st.alive[i] = false
					st.n--
					progressed = true
					break
				}
			}
		}
		// Rule 3: absorb an atom into S (it becomes a top node).
		for i := range st.cur {
			if !st.alive[i] {
				continue
			}
			if s.ContainsAll(st.cur[i]) {
				topOf[i] = st.cur[i].Clone()
				st.alive[i] = false
				st.n--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("hypergraph: internal error: S-connex elimination stalled on %v with S=%v", h, s)
		}
	}

	// Deduplicate top sets and build their join tree.
	type topInfo struct {
		vars  cq.VarSet
		atoms []int
	}
	var tops []topInfo
	topIndex := make(map[string]int)
	for i, tv := range topOf {
		if tv == nil {
			continue
		}
		key := tv.String()
		ti, ok := topIndex[key]
		if !ok {
			ti = len(tops)
			topIndex[key] = ti
			tops = append(tops, topInfo{vars: tv})
		}
		tops[ti].atoms = append(tops[ti].atoms, i)
	}
	if len(tops) == 0 {
		return nil, fmt.Errorf("hypergraph: internal error: no top nodes produced")
	}
	topSets := make([]cq.VarSet, len(tops))
	for i, t := range tops {
		topSets[i] = t.vars
	}
	topTree, err := BuildJoinTree(FromVarSets(topSets...))
	if err != nil {
		return nil, fmt.Errorf("hypergraph: internal error: top hypergraph is cyclic: %w", err)
	}

	// Assemble the full tree: top nodes first, then atom nodes.
	t := &ConnexTree{S: s.Clone()}
	atomNode := make([]int, len(h.Edges))
	topNode := make([]int, len(tops))
	for i, ti := range tops {
		topNode[i] = len(t.Nodes)
		atomEdge := -1
		if len(ti.atoms) == 1 {
			atomEdge = ti.atoms[0]
		}
		t.Nodes = append(t.Nodes, ConnexNode{Vars: ti.vars, AtomEdge: atomEdge, IsTop: true})
	}
	for i, e := range h.Edges {
		atomNode[i] = len(t.Nodes)
		t.Nodes = append(t.Nodes, ConnexNode{Vars: e.Vars.Clone(), AtomEdge: i})
	}
	t.Parent = make([]int, len(t.Nodes))
	for i := range tops {
		if p := topTree.Parent[i]; p >= 0 {
			t.Parent[topNode[i]] = topNode[p]
		} else {
			t.Parent[topNode[i]] = -1
			t.Root = topNode[i]
		}
	}
	for i := range h.Edges {
		switch {
		case topOf[i] != nil:
			t.Parent[atomNode[i]] = topNode[topIndex[topOf[i].String()]]
		case absorbedInto[i] >= 0:
			t.Parent[atomNode[i]] = atomNode[absorbedInto[i]]
		default:
			return nil, fmt.Errorf("hypergraph: internal error: atom edge %d neither absorbed nor top", i)
		}
	}
	if err := t.Verify(h); err != nil {
		return nil, fmt.Errorf("hypergraph: internal error: connex tree invalid: %w", err)
	}
	return t, nil
}

// Verify checks that the tree is a join tree of an inclusive extension of h
// (every node a subset of some edge, every edge present as a node), that
// the running intersection property holds, and that the top nodes form a
// connected subtree covering exactly S.
func (t *ConnexTree) Verify(h *Hypergraph) error {
	n := len(t.Nodes)
	if len(t.Parent) != n {
		return fmt.Errorf("parent array size mismatch")
	}
	roots := 0
	for _, p := range t.Parent {
		if p == -1 {
			roots++
		} else if p < 0 || p >= n {
			return fmt.Errorf("invalid parent %d", p)
		}
	}
	if roots != 1 {
		return fmt.Errorf("tree has %d roots", roots)
	}
	// Inclusive extension: every node ⊆ some edge of h; every edge of h
	// appears as a node.
	for i, nd := range t.Nodes {
		covered := false
		for _, e := range h.Edges {
			if e.Vars.ContainsAll(nd.Vars) {
				covered = true
				break
			}
		}
		if !covered && len(nd.Vars) > 0 {
			return fmt.Errorf("node %d (%v) is not a subset of any edge", i, nd.Vars)
		}
	}
	for _, e := range h.Edges {
		found := false
		for _, nd := range t.Nodes {
			if !nd.IsTop && nd.Vars.Equal(e.Vars) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("edge %v of the hypergraph is missing from the tree", e.Vars)
		}
	}
	// Tree reachability.
	children := make([][]int, n)
	root := -1
	for i, p := range t.Parent {
		if p == -1 {
			root = i
		} else {
			children[p] = append(children[p], i)
		}
	}
	seen := 0
	stack := []int{root}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen++
		stack = append(stack, children[i]...)
	}
	if seen != n {
		return fmt.Errorf("tree reaches %d of %d nodes", seen, n)
	}
	// Running intersection over all nodes.
	vertices := make(cq.VarSet)
	for _, nd := range t.Nodes {
		vertices.AddAll(nd.Vars)
	}
	for v := range vertices {
		var holders []int
		for i, nd := range t.Nodes {
			if nd.Vars[v] {
				holders = append(holders, i)
			}
		}
		if !connectedInTree(t.Parent, holders) {
			return fmt.Errorf("vertex %s violates running intersection", v)
		}
	}
	// Top part: connected, covers exactly S.
	var topIdx []int
	topVars := make(cq.VarSet)
	for i, nd := range t.Nodes {
		if nd.IsTop {
			topIdx = append(topIdx, i)
			topVars.AddAll(nd.Vars)
			if !t.S.ContainsAll(nd.Vars) {
				return fmt.Errorf("top node %d (%v) exceeds S %v", i, nd.Vars, t.S)
			}
		}
	}
	if !topVars.Equal(t.S) {
		return fmt.Errorf("top nodes cover %v, want exactly %v", topVars, t.S)
	}
	if !connectedInTree(t.Parent, topIdx) {
		return fmt.Errorf("top nodes are not connected")
	}
	return nil
}

// connectedInTree reports whether the given node indices form a connected
// subtree of the tree described by the parent array.
func connectedInTree(parent []int, nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	in := make(map[int]bool, len(nodes))
	for _, i := range nodes {
		in[i] = true
	}
	top := -2
	for _, i := range nodes {
		j := i
		for parent[j] >= 0 && in[parent[j]] {
			j = parent[j]
		}
		if top == -2 {
			top = j
		} else if top != j {
			return false
		}
	}
	return true
}

// TopNodes returns the indices of the top (S-part) nodes.
func (t *ConnexTree) TopNodes() []int {
	var out []int
	for i, nd := range t.Nodes {
		if nd.IsTop {
			out = append(out, i)
		}
	}
	return out
}

// String renders the tree with top nodes marked by '*'.
func (t *ConnexTree) String() string {
	children := make([][]int, len(t.Nodes))
	for i, p := range t.Parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	var b strings.Builder
	var rec func(i, depth int)
	rec = func(i, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if t.Nodes[i].IsTop {
			b.WriteByte('*')
		}
		b.WriteString(t.Nodes[i].Vars.String())
		b.WriteByte('\n')
		order := append([]int(nil), children[i]...)
		sort.Ints(order)
		for _, c := range order {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}
