package hypergraph

import (
	"repro/internal/cq"
)

// IsKUniform reports whether every edge has exactly k vertices.
func (h *Hypergraph) IsKUniform(k int) bool {
	for _, e := range h.Edges {
		if len(e.Vars) != k {
			return false
		}
	}
	return len(h.Edges) > 0
}

// IsHyperclique reports whether the vertex set V' is an l-hyperclique in a
// k-uniform hypergraph (Section 2): |V'| = l > k and every k-subset of V'
// is an edge.
func (h *Hypergraph) IsHyperclique(vs cq.VarSet, k int) bool {
	verts := vs.Sorted()
	if len(verts) <= k {
		return false
	}
	found := true
	forEachSubset(verts, k, func(sub []cq.Variable) {
		if !found {
			return
		}
		set := cq.NewVarSet(sub...)
		match := false
		for _, e := range h.Edges {
			if e.Vars.Equal(set) {
				match = true
				break
			}
		}
		if !match {
			found = false
		}
	})
	return found
}

// FindHyperclique searches for an l-hyperclique in a (l-1)-uniform
// hypergraph, the structure whose detection the hyperclique hypothesis
// conjectures to require super-linear time (and which Theorem 3(3) embeds
// into cyclic CQs). Query-scale only: the search is exponential in the
// vertex count.
func (h *Hypergraph) FindHyperclique(l int) (cq.VarSet, bool) {
	k := l - 1
	if !h.IsKUniform(k) {
		return nil, false
	}
	verts := h.Vertices().Sorted()
	if len(verts) < l {
		return nil, false
	}
	var result cq.VarSet
	forEachSubset(verts, l, func(sub []cq.Variable) {
		if result != nil {
			return
		}
		cand := cq.NewVarSet(sub...)
		if h.IsHyperclique(cand, k) {
			result = cand
		}
	})
	if result == nil {
		return nil, false
	}
	return result, true
}

// forEachSubset invokes fn on every size-k subset of verts (in sorted
// order).
func forEachSubset(verts []cq.Variable, k int, fn func([]cq.Variable)) {
	n := len(verts)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]cq.Variable, k)
	for {
		for i, j := range idx {
			sub[i] = verts[j]
		}
		fn(sub)
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
