// Package database implements the in-memory storage substrate: values,
// tuples, relations, database instances and hash indexes.
//
// The paper assumes the DRAM model: registers of O(log n) bits with O(1)
// lookups into tables of polynomial size. We realise the model with int64
// values, flat row-major relation storage and hash indexes; all "constant
// time" register operations become expected-constant-time hash operations.
//
// Values support an 8-bit tag alongside a 56-bit payload. Tags implement the
// paper's "concatenate the variable name to the value" trick (proof of
// Lemma 14 and the encodings in Examples 18, 31 and 39): a constant (c, v)
// for variable v is a payload c tagged with v's index.
package database

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a database constant: an 8-bit tag and a 56-bit signed payload.
// Plain constants have tag 0.
type Value int64

const (
	payloadBits = 56
	// MaxPayload is the largest payload storable in a Value.
	MaxPayload = int64(1)<<(payloadBits-1) - 1
	// MinPayload is the smallest payload storable in a Value.
	MinPayload = -(int64(1) << (payloadBits - 1))
)

// V builds an untagged value. It panics when the payload is out of range;
// workloads in this repository stay far below the 56-bit limit.
func V(payload int64) Value {
	return TaggedValue(payload, 0)
}

// TaggedValue builds a value carrying a tag. Tagged values with different
// tags always compare unequal, which is what makes the Lemma 14 encoding
// assign disjoint domains to distinct variables.
func TaggedValue(payload int64, tag uint8) Value {
	if payload > MaxPayload || payload < MinPayload {
		panic(fmt.Sprintf("database: payload %d out of range", payload))
	}
	return Value(int64(tag)<<payloadBits | (payload & (1<<payloadBits - 1)))
}

// Tag returns the value's tag.
func (v Value) Tag() uint8 {
	return uint8(uint64(v) >> payloadBits)
}

// Payload returns the value's payload, sign-extended.
func (v Value) Payload() int64 {
	return int64(v) << (64 - payloadBits) >> (64 - payloadBits)
}

// String renders the value; tagged values render as payload#tag.
func (v Value) String() string {
	if t := v.Tag(); t != 0 {
		return fmt.Sprintf("%d#%d", v.Payload(), t)
	}
	return fmt.Sprintf("%d", v.Payload())
}

// Tuple is a sequence of values. Tuples obtained from relations are views
// into shared storage and must not be mutated or retained across appends.
type Tuple []Value

// Clone returns an owned copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Key encodes the tuple as a string map key. The engine's own dedup sites
// use Hash and TupleSet instead; Key remains for tests and external callers
// that want a map-friendly identity.
func (t Tuple) Key() string {
	return encodeKey(t)
}

// Less orders tuples lexicographically; used for deterministic output.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}

// String renders the tuple as (a,b,c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// encodeKey packs values into a string usable as a hash key.
func encodeKey(vals []Value) string {
	b := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		u := uint64(v)
		b = append(b,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// Relation is a bag-free (set-semantics is enforced by callers via Dedup or
// index-guarded inserts) table with flat row-major storage.
type Relation struct {
	Name  string
	arity int
	data  []Value
	// nullaryLen counts rows of arity-0 relations, which carry no data.
	nullaryLen int
}

// NewRelation creates an empty relation of the given arity. Arity zero is
// allowed: a nullary relation holds either zero rows or one empty row.
func NewRelation(name string, arity int) *Relation {
	if arity < 0 {
		panic("database: negative arity")
	}
	return &Relation{Name: name, arity: arity}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of rows. Nullary relations track their row count
// explicitly via AppendEmptyRow.
func (r *Relation) Len() int {
	if r.arity == 0 {
		return r.nullaryLen
	}
	return len(r.data) / r.arity
}

// Append adds one row. It panics on arity mismatch: relation loading is
// programmatic here and an arity error is a bug, not input error.
func (r *Relation) Append(vals ...Value) {
	if len(vals) != r.arity {
		panic(fmt.Sprintf("database: relation %s arity %d, got %d values", r.Name, r.arity, len(vals)))
	}
	if r.arity == 0 {
		r.nullaryLen++
		return
	}
	r.data = append(r.data, vals...)
}

// AppendInts adds one row of untagged values.
func (r *Relation) AppendInts(vals ...int64) {
	if len(vals) != r.arity {
		panic(fmt.Sprintf("database: relation %s arity %d, got %d values", r.Name, r.arity, len(vals)))
	}
	for _, v := range vals {
		r.data = append(r.data, V(v))
	}
	if r.arity == 0 {
		r.nullaryLen++
	}
}

// Row returns a view of row i. The view is valid until the next Append.
func (r *Relation) Row(i int) Tuple {
	if r.arity == 0 {
		return Tuple{}
	}
	return Tuple(r.data[i*r.arity : (i+1)*r.arity])
}

// Rows returns owned copies of all rows, for tests and small outputs.
func (r *Relation) Rows() []Tuple {
	out := make([]Tuple, r.Len())
	for i := range out {
		out[i] = r.Row(i).Clone()
	}
	return out
}

// SortedRows returns owned copies of all rows in lexicographic order.
func (r *Relation) SortedRows() []Tuple {
	out := r.Rows()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Dedup removes duplicate rows in place (stable on first occurrence).
func (r *Relation) Dedup() {
	if r.arity == 0 {
		if r.nullaryLen > 1 {
			r.nullaryLen = 1
		}
		return
	}
	n := r.Len()
	seen := NewTupleSet(n)
	out := r.data[:0]
	for i := 0; i < n; i++ {
		row := r.Row(i)
		if seen.Insert(row) {
			out = append(out, row...)
		}
	}
	r.data = out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Name, r.arity)
	out.data = append([]Value(nil), r.data...)
	out.nullaryLen = r.nullaryLen
	return out
}

// Project returns a new deduplicated relation holding the given columns of
// every row.
func (r *Relation) Project(name string, cols []int) *Relation {
	for _, c := range cols {
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("database: projection column %d out of range for arity %d", c, r.arity))
		}
	}
	out := NewRelation(name, len(cols))
	seen := NewTupleSet(r.Len())
	row := make(Tuple, len(cols))
	for i := 0; i < r.Len(); i++ {
		src := r.Row(i)
		for j, c := range cols {
			row[j] = src[c]
		}
		if !seen.Insert(row) {
			continue
		}
		if len(cols) == 0 {
			out.nullaryLen = 1
			break
		}
		out.data = append(out.data, row...)
	}
	return out
}

// Filter returns a new relation with the rows satisfying keep.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := NewRelation(r.Name, r.arity)
	if r.arity == 0 {
		if r.nullaryLen > 0 && keep(Tuple{}) {
			out.nullaryLen = r.nullaryLen
		}
		return out
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		if keep(row) {
			out.data = append(out.data, row...)
		}
	}
	return out
}

// String renders the relation name, arity and row count.
func (r *Relation) String() string {
	return fmt.Sprintf("%s/%d[%d rows]", r.Name, r.arity, r.Len())
}

// Index is a hash index on a column subset of a relation. Lookups return
// row numbers. Keys are interned in a TupleSet, so a lookup hashes the key
// tuple in place and allocates nothing.
type Index struct {
	rel  *Relation
	cols []int
	keys *TupleSet
	// rows[e] lists the rows whose projection is key entry e.
	rows [][]int32
}

// BuildIndex indexes the relation on the given columns. The index snapshots
// row numbers; it must be rebuilt if the relation changes.
func (r *Relation) BuildIndex(cols []int) *Index {
	ix := &Index{rel: r, cols: append([]int(nil), cols...), keys: NewTupleSet(r.Len())}
	key := make(Tuple, len(cols))
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		for j, c := range cols {
			key[j] = row[c]
		}
		e, fresh := ix.keys.Add(key)
		if fresh {
			ix.rows = append(ix.rows, nil)
		}
		ix.rows[e] = append(ix.rows[e], int32(i))
	}
	return ix
}

// Lookup returns the row numbers whose indexed columns equal key.
func (ix *Index) Lookup(key []Value) []int32 {
	e := ix.keys.IndexOf(key)
	if e < 0 {
		return nil
	}
	return ix.rows[e]
}

// Contains reports whether any row matches key. Every interned key has at
// least one row, so membership in the key set suffices.
func (ix *Index) Contains(key []Value) bool {
	return ix.keys.Contains(key)
}

// NumKeys returns the number of distinct keys in the index.
func (ix *Index) NumKeys() int { return ix.keys.Len() }

// EntryOf returns the dense entry number of key (the e with
// RowsAt(e) == Lookup(key)), or -1 when no row matches. Entry numbers are
// stable for the lifetime of the index and span [0, NumKeys()).
func (ix *Index) EntryOf(key []Value) int {
	return ix.keys.IndexOf(key)
}

// RowsAt returns the row numbers of entry e.
func (ix *Index) RowsAt(e int) []int32 { return ix.rows[e] }

// Cols returns the indexed columns.
func (ix *Index) Cols() []int { return ix.cols }

// Semijoin keeps the rows of r whose cols-projection matches some row of s
// on sCols, returning a new relation (r ⋉ s). It builds a hash set over s.
func Semijoin(r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	if len(rCols) != len(sCols) {
		panic("database: semijoin column count mismatch")
	}
	// With no shared columns the key degenerates to the empty tuple and
	// the semijoin keeps all of r iff s is non-empty, as it should.
	set := NewTupleSet(s.Len())
	key := make(Tuple, len(sCols))
	for i := 0; i < s.Len(); i++ {
		row := s.Row(i)
		for j, c := range sCols {
			key[j] = row[c]
		}
		set.Insert(key)
	}
	out := NewRelation(r.Name, r.Arity())
	rkey := make(Tuple, len(rCols))
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		for j, c := range rCols {
			rkey[j] = row[c]
		}
		if set.Contains(rkey) {
			if r.Arity() == 0 {
				out.nullaryLen++
			} else {
				out.data = append(out.data, row...)
			}
		}
	}
	return out
}

// Instance is a database instance: a relation per symbol.
type Instance struct {
	rels map[string]*Relation
}

// NewInstance creates an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: make(map[string]*Relation)}
}

// AddRelation registers a relation, replacing any previous one of the same
// name.
func (in *Instance) AddRelation(r *Relation) {
	in.rels[r.Name] = r
}

// Relation returns the named relation, or nil.
func (in *Instance) Relation(name string) *Relation {
	return in.rels[name]
}

// MustRelation returns the named relation or panics; for internal plumbing
// after validation.
func (in *Instance) MustRelation(name string) *Relation {
	r := in.rels[name]
	if r == nil {
		panic(fmt.Sprintf("database: no relation %q", name))
	}
	return r
}

// Names returns the relation names in sorted order.
func (in *Instance) Names() []string {
	out := make([]string, 0, len(in.rels))
	for n := range in.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of stored values across relations — the
// ||I|| measure the paper's linear-preprocessing bounds refer to.
func (in *Instance) Size() int {
	n := 0
	for _, r := range in.rels {
		n += r.Len() * r.Arity()
	}
	return n
}

// TupleCount returns the total number of rows across relations.
func (in *Instance) TupleCount() int {
	n := 0
	for _, r := range in.rels {
		n += r.Len()
	}
	return n
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := NewInstance()
	for _, r := range in.rels {
		out.AddRelation(r.Clone())
	}
	return out
}

// ShallowClone returns a new instance sharing the relation objects. Query
// engines in this repository never mutate input relations, so overlaying
// extra relations on a shared base is safe and avoids copying the data.
func (in *Instance) ShallowClone() *Instance {
	out := NewInstance()
	for _, r := range in.rels {
		out.AddRelation(r)
	}
	return out
}

// String summarises the instance.
func (in *Instance) String() string {
	parts := make([]string, 0, len(in.rels))
	for _, n := range in.Names() {
		parts = append(parts, in.rels[n].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
