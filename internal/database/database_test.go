package database

import (
	"testing"
	"testing/quick"
)

func TestValueTagging(t *testing.T) {
	cases := []struct {
		payload int64
		tag     uint8
	}{
		{0, 0}, {1, 0}, {-1, 0}, {42, 7}, {-42, 7}, {MaxPayload, 255}, {MinPayload, 1},
	}
	for _, tc := range cases {
		v := TaggedValue(tc.payload, tc.tag)
		if v.Payload() != tc.payload {
			t.Errorf("payload(%d,%d) = %d", tc.payload, tc.tag, v.Payload())
		}
		if v.Tag() != tc.tag {
			t.Errorf("tag(%d,%d) = %d", tc.payload, tc.tag, v.Tag())
		}
	}
	if V(5) != TaggedValue(5, 0) {
		t.Errorf("V disagrees with TaggedValue")
	}
	// Distinct tags yield distinct values even with equal payloads.
	if TaggedValue(9, 1) == TaggedValue(9, 2) {
		t.Errorf("tags did not separate domains")
	}
}

func TestValueTaggingQuick(t *testing.T) {
	f := func(payload int64, tag uint8) bool {
		p := payload % MaxPayload
		v := TaggedValue(p, tag)
		return v.Payload() == p && v.Tag() == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for out-of-range payload")
		}
	}()
	TaggedValue(MaxPayload+1, 0)
}

func TestValueString(t *testing.T) {
	if got := V(3).String(); got != "3" {
		t.Errorf("String = %q", got)
	}
	if got := TaggedValue(3, 2).String(); got != "3#2" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleBasics(t *testing.T) {
	a := Tuple{V(1), V(2)}
	b := a.Clone()
	b[0] = V(9)
	if a[0] != V(1) {
		t.Errorf("clone aliases")
	}
	if !a.Equal(Tuple{V(1), V(2)}) || a.Equal(Tuple{V(1)}) || a.Equal(Tuple{V(1), V(3)}) {
		t.Errorf("Equal wrong")
	}
	if !a.Less(Tuple{V(1), V(3)}) || a.Less(Tuple{V(1), V(2)}) {
		t.Errorf("Less wrong")
	}
	if !(Tuple{V(1)}).Less(Tuple{V(1), V(0)}) {
		t.Errorf("prefix Less wrong")
	}
	if a.String() != "(1,2)" {
		t.Errorf("String = %q", a.String())
	}
	if a.Key() == (Tuple{V(1), V(3)}).Key() {
		t.Errorf("keys collide")
	}
}

func TestRelationAppendRowLen(t *testing.T) {
	r := NewRelation("R", 2)
	r.AppendInts(1, 2)
	r.Append(V(3), V(4))
	if r.Len() != 2 || r.Arity() != 2 {
		t.Fatalf("len=%d arity=%d", r.Len(), r.Arity())
	}
	if !r.Row(1).Equal(Tuple{V(3), V(4)}) {
		t.Errorf("row 1 = %v", r.Row(1))
	}
	rows := r.Rows()
	if len(rows) != 2 || !rows[0].Equal(Tuple{V(1), V(2)}) {
		t.Errorf("rows = %v", rows)
	}
}

func TestRelationAppendArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on arity mismatch")
		}
	}()
	NewRelation("R", 2).AppendInts(1)
}

func TestRelationDedupAndSorted(t *testing.T) {
	r := NewRelation("R", 2)
	r.AppendInts(2, 2)
	r.AppendInts(1, 1)
	r.AppendInts(2, 2)
	r.Dedup()
	if r.Len() != 2 {
		t.Fatalf("dedup len = %d", r.Len())
	}
	sorted := r.SortedRows()
	if !sorted[0].Equal(Tuple{V(1), V(1)}) {
		t.Errorf("sorted = %v", sorted)
	}
}

func TestRelationProject(t *testing.T) {
	r := NewRelation("R", 3)
	r.AppendInts(1, 2, 3)
	r.AppendInts(1, 5, 3)
	r.AppendInts(7, 8, 9)
	p := r.Project("P", []int{0, 2})
	if p.Len() != 2 || p.Arity() != 2 {
		t.Fatalf("project = %v", p.Rows())
	}
	rows := p.SortedRows()
	if !rows[0].Equal(Tuple{V(1), V(3)}) || !rows[1].Equal(Tuple{V(7), V(9)}) {
		t.Errorf("project rows = %v", rows)
	}
	// Projection to zero columns of a nonempty relation is one empty row.
	z := r.Project("Z", nil)
	if z.Len() != 1 || z.Arity() != 0 {
		t.Errorf("nullary projection len=%d arity=%d", z.Len(), z.Arity())
	}
}

func TestProjectOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on bad projection")
		}
	}()
	NewRelation("R", 1).Project("P", []int{3})
}

func TestRelationFilterCloneString(t *testing.T) {
	r := NewRelation("R", 1)
	r.AppendInts(1)
	r.AppendInts(2)
	f := r.Filter(func(tp Tuple) bool { return tp[0] == V(2) })
	if f.Len() != 1 || !f.Row(0).Equal(Tuple{V(2)}) {
		t.Errorf("filter = %v", f.Rows())
	}
	c := r.Clone()
	c.AppendInts(3)
	if r.Len() != 2 {
		t.Errorf("clone aliases storage")
	}
	if r.String() != "R/1[2 rows]" {
		t.Errorf("String = %q", r.String())
	}
}

func TestNullaryRelation(t *testing.T) {
	r := NewRelation("B", 0)
	if r.Len() != 0 {
		t.Fatalf("empty nullary len = %d", r.Len())
	}
	r.Append()
	r.Append()
	if r.Len() != 2 {
		t.Fatalf("nullary len = %d", r.Len())
	}
	r.Dedup()
	if r.Len() != 1 {
		t.Errorf("nullary dedup len = %d", r.Len())
	}
	if len(r.Row(0)) != 0 {
		t.Errorf("nullary row non-empty")
	}
}

func TestIndexLookup(t *testing.T) {
	r := NewRelation("R", 2)
	r.AppendInts(1, 10)
	r.AppendInts(1, 20)
	r.AppendInts(2, 30)
	ix := r.BuildIndex([]int{0})
	if got := ix.Lookup([]Value{V(1)}); len(got) != 2 {
		t.Errorf("lookup(1) = %v", got)
	}
	if got := ix.Lookup([]Value{V(3)}); len(got) != 0 {
		t.Errorf("lookup(3) = %v", got)
	}
	if !ix.Contains([]Value{V(2)}) || ix.Contains([]Value{V(9)}) {
		t.Errorf("Contains wrong")
	}
	if len(ix.Cols()) != 1 || ix.Cols()[0] != 0 {
		t.Errorf("Cols = %v", ix.Cols())
	}
}

func TestSemijoin(t *testing.T) {
	r := NewRelation("R", 2)
	r.AppendInts(1, 10)
	r.AppendInts(2, 20)
	r.AppendInts(3, 30)
	s := NewRelation("S", 2)
	s.AppendInts(10, 100)
	s.AppendInts(30, 300)
	out := Semijoin(r, []int{1}, s, []int{0})
	rows := out.SortedRows()
	if len(rows) != 2 || rows[0][0] != V(1) || rows[1][0] != V(3) {
		t.Errorf("semijoin = %v", rows)
	}
}

func TestSemijoinNoSharedColumns(t *testing.T) {
	r := NewRelation("R", 1)
	r.AppendInts(1)
	sEmpty := NewRelation("S", 1)
	if got := Semijoin(r, nil, sEmpty, nil); got.Len() != 0 {
		t.Errorf("semijoin with empty s kept %d rows", got.Len())
	}
	sFull := NewRelation("S", 1)
	sFull.AppendInts(9)
	if got := Semijoin(r, nil, sFull, nil); got.Len() != 1 {
		t.Errorf("semijoin with nonempty s kept %d rows", got.Len())
	}
}

func TestSemijoinMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on column mismatch")
		}
	}()
	Semijoin(NewRelation("R", 1), []int{0}, NewRelation("S", 1), nil)
}

func TestSemijoinQuickAgainstNaive(t *testing.T) {
	f := func(rvals, svals []uint8) bool {
		r := NewRelation("R", 1)
		for _, v := range rvals {
			r.AppendInts(int64(v % 8))
		}
		s := NewRelation("S", 1)
		sset := make(map[Value]bool)
		for _, v := range svals {
			s.AppendInts(int64(v % 8))
			sset[V(int64(v%8))] = true
		}
		out := Semijoin(r, []int{0}, s, []int{0})
		want := 0
		for i := 0; i < r.Len(); i++ {
			if sset[r.Row(i)[0]] {
				want++
			}
		}
		return out.Len() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstance(t *testing.T) {
	in := NewInstance()
	r := NewRelation("R", 2)
	r.AppendInts(1, 2)
	in.AddRelation(r)
	s := NewRelation("S", 1)
	s.AppendInts(5)
	in.AddRelation(s)
	if in.Relation("R") != r || in.Relation("missing") != nil {
		t.Errorf("Relation lookup wrong")
	}
	if got := in.Names(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("Names = %v", got)
	}
	if in.Size() != 3 {
		t.Errorf("Size = %d", in.Size())
	}
	if in.TupleCount() != 2 {
		t.Errorf("TupleCount = %d", in.TupleCount())
	}
	c := in.Clone()
	c.Relation("R").AppendInts(7, 8)
	if in.Relation("R").Len() != 1 {
		t.Errorf("clone aliases relations")
	}
	if in.String() == "" {
		t.Errorf("empty String")
	}
}

func TestMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for missing relation")
		}
	}()
	NewInstance().MustRelation("nope")
}
