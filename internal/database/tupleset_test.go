package database

import "testing"

func TestTupleHashEqualTuples(t *testing.T) {
	a := Tuple{V(1), V(2), V(3)}
	b := Tuple{V(1), V(2), V(3)}
	if a.Hash() != b.Hash() {
		t.Fatal("equal tuples must hash equal")
	}
	if a.Hash() == (Tuple{V(1), V(3), V(2)}).Hash() {
		t.Fatal("permuted tuple should (overwhelmingly) hash differently")
	}
	if (Tuple{V(1)}).Hash() == (Tuple{TaggedValue(1, 2)}).Hash() {
		t.Fatal("tagged value should hash differently from untagged")
	}
}

func TestTupleSetInsertContains(t *testing.T) {
	s := NewTupleSet(0)
	if s.Len() != 0 {
		t.Fatalf("empty set Len = %d", s.Len())
	}
	if s.Contains(Tuple{V(1), V(2)}) {
		t.Fatal("empty set contains a tuple")
	}
	if !s.Insert(Tuple{V(1), V(2)}) {
		t.Fatal("first insert not fresh")
	}
	if s.Insert(Tuple{V(1), V(2)}) {
		t.Fatal("second insert fresh")
	}
	if !s.Contains(Tuple{V(1), V(2)}) {
		t.Fatal("inserted tuple missing")
	}
	if s.Contains(Tuple{V(2), V(1)}) {
		t.Fatal("set contains a never-inserted tuple")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestTupleSetGrowAndViews inserts enough tuples to force several slot-table
// doublings and arena reallocations, then checks membership, entry count and
// that views handed out early (before any growth) still hold their values.
func TestTupleSetGrowAndViews(t *testing.T) {
	const n = 10000
	s := NewTupleSet(0)
	first, fresh := s.InsertGet(Tuple{V(0), V(0)})
	if !fresh {
		t.Fatal("first insert not fresh")
	}
	for i := int64(1); i < n; i++ {
		if !s.Insert(Tuple{V(i), V(i * 31)}) {
			t.Fatalf("insert %d not fresh", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if !s.Contains(Tuple{V(i), V(i * 31)}) {
			t.Fatalf("tuple %d missing after growth", i)
		}
		if s.Insert(Tuple{V(i), V(i * 31)}) {
			t.Fatalf("re-insert %d fresh", i)
		}
	}
	if !first.Equal(Tuple{V(0), V(0)}) {
		t.Fatalf("early view changed: %v", first)
	}
}

func TestTupleSetInsertGetStableCopy(t *testing.T) {
	s := NewTupleSet(0)
	buf := Tuple{V(7), V(8)}
	stored, fresh := s.InsertGet(buf)
	if !fresh || !stored.Equal(Tuple{V(7), V(8)}) {
		t.Fatalf("InsertGet = %v, %v", stored, fresh)
	}
	// The stored tuple is a copy: mutating the caller's buffer must not
	// affect the set.
	buf[0] = V(99)
	if !s.Contains(Tuple{V(7), V(8)}) || s.Contains(buf) {
		t.Fatal("stored tuple aliases the caller's buffer")
	}
	again, fresh2 := s.InsertGet(Tuple{V(7), V(8)})
	if fresh2 || !again.Equal(stored) {
		t.Fatalf("second InsertGet = %v, %v", again, fresh2)
	}
}

func TestTupleSetMixedArity(t *testing.T) {
	s := NewTupleSet(4)
	for _, tu := range []Tuple{{}, {V(1)}, {V(1), V(1)}, {V(1), V(1), V(1)}} {
		if !s.Insert(tu) {
			t.Fatalf("insert %v not fresh", tu)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	// A prefix of a longer tuple is a distinct entry, not a match.
	if s.Insert(Tuple{}) || s.Insert(Tuple{V(1), V(1)}) {
		t.Fatal("duplicate reported fresh")
	}
	if got := s.At(0); len(got) != 0 {
		t.Fatalf("At(0) = %v, want empty", got)
	}
	if got := s.At(3); !got.Equal(Tuple{V(1), V(1), V(1)}) {
		t.Fatalf("At(3) = %v", got)
	}
}

func TestTupleSetEmptyTuple(t *testing.T) {
	s := NewTupleSet(0)
	if s.Contains(Tuple{}) {
		t.Fatal("empty set contains the empty tuple")
	}
	if !s.Insert(Tuple{}) {
		t.Fatal("empty-tuple insert not fresh")
	}
	if s.Insert(Tuple{}) || !s.Contains(Tuple{}) {
		t.Fatal("empty-tuple dedup broken")
	}
}
