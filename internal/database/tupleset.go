package database

// This file implements the compact tuple-key layer: a 64-bit tuple hash and
// an arena-backed deduplication set. Together they replace the string-keyed
// maps (one string allocation per probe, one per stored key) that used to
// back every dedup site in the engine; probes are allocation-free and stored
// tuples live contiguously in a single growing arena.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a 64-bit hash of the tuple: FNV-1a over the value words,
// followed by a 64-bit avalanche. The multiply in FNV only propagates
// entropy toward high bits, while open-addressed tables select slots from
// the low bits; the final mix spreads the entropy back down.
func (t Tuple) Hash() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// TupleSet is a deduplication set over tuples. Inserted tuples are copied
// back to back into one growing arena and addressed by an open-addressed
// slot table keyed on Tuple.Hash, so membership probes allocate nothing and
// a set of n tuples costs three flat slices rather than n map entries.
// Tuples of different lengths may share a set. A TupleSet is not safe for
// concurrent use.
//
// Offsets are int32: a set holds at most 2^31 values / 2^31-1 entries,
// far beyond the workloads here (the flat Relation storage shares the same
// practical bound).
type TupleSet struct {
	arena []Value
	// offs brackets the entries: entry i spans arena[offs[i]:offs[i+1]],
	// so len(offs) is Len()+1 and offs[0] is 0.
	offs   []int32
	hashes []uint64
	// slots is the open-addressed table: -1 empty, else an entry index.
	slots []int32
	mask  uint64
}

// NewTupleSet creates an empty set sized for about sizeHint entries.
func NewTupleSet(sizeHint int) *TupleSet {
	return NewTupleSetSized(sizeHint, 0)
}

// NewTupleSetSized creates an empty set sized for about sizeHint entries
// holding valueHint values in total (sizeHint × arity for fixed-arity
// callers). With both hints right, inserting the whole set allocates
// nothing beyond the initial slices: slot table, hash list and arena are
// all at final size up front.
func NewTupleSetSized(sizeHint, valueHint int) *TupleSet {
	if sizeHint < 0 {
		sizeHint = 0
	}
	if valueHint < 0 {
		valueHint = 0
	}
	n := 8
	for n*3/4 < sizeHint {
		n <<= 1
	}
	s := &TupleSet{
		arena:  make([]Value, 0, valueHint),
		offs:   make([]int32, 1, sizeHint+1),
		hashes: make([]uint64, 0, sizeHint),
		slots:  make([]int32, n),
		mask:   uint64(n - 1),
	}
	for i := range s.slots {
		s.slots[i] = -1
	}
	return s
}

// Len returns the number of distinct tuples inserted.
func (s *TupleSet) Len() int { return len(s.offs) - 1 }

// At returns entry i as a view into the arena. Views stay valid and
// immutable for the lifetime of the set; callers must not mutate them.
func (s *TupleSet) At(i int) Tuple { return Tuple(s.arena[s.offs[i]:s.offs[i+1]]) }

// HashAt returns the stored hash of entry i, letting spill migration move
// entries into a disk-backed table without rehashing the arena.
func (s *TupleSet) HashAt(i int) uint64 { return s.hashes[i] }

// findSlot returns the slot holding an entry equal to t, or the first empty
// slot of its probe sequence.
func (s *TupleSet) findSlot(h uint64, t Tuple) uint64 {
	i := h & s.mask
	for {
		e := s.slots[i]
		if e < 0 || (s.hashes[e] == h && s.At(int(e)).Equal(t)) {
			return i
		}
		i = (i + 1) & s.mask
	}
}

// IndexOf returns the entry index of t, or -1 when absent.
func (s *TupleSet) IndexOf(t Tuple) int {
	return int(s.slots[s.findSlot(t.Hash(), t)])
}

// Contains reports membership without inserting.
func (s *TupleSet) Contains(t Tuple) bool { return s.IndexOf(t) >= 0 }

// Add inserts t if absent, returning its entry index and whether it was
// newly inserted. The tuple is copied; t may be a transient view.
func (s *TupleSet) Add(t Tuple) (int, bool) {
	h := t.Hash()
	i := s.findSlot(h, t)
	if e := s.slots[i]; e >= 0 {
		return int(e), false
	}
	e := int32(s.Len())
	s.slots[i] = e
	s.hashes = append(s.hashes, h)
	s.arena = append(s.arena, t...)
	s.offs = append(s.offs, int32(len(s.arena)))
	if uint64(s.Len())*4 >= (s.mask+1)*3 {
		s.grow()
	}
	return int(e), true
}

// Insert inserts t if absent, reporting whether it was newly inserted.
func (s *TupleSet) Insert(t Tuple) bool {
	_, fresh := s.Add(t)
	return fresh
}

// InsertGet inserts t if absent and returns the stored copy — a stable
// arena view — along with whether it was newly inserted. Streaming dedup
// sites hand the view straight to consumers instead of cloning.
func (s *TupleSet) InsertGet(t Tuple) (Tuple, bool) {
	e, fresh := s.Add(t)
	return s.At(e), fresh
}

// grow doubles the slot table and rehouses every entry from its stored
// hash; the arena itself never moves entries.
func (s *TupleSet) grow() {
	n := (s.mask + 1) * 2
	s.slots = make([]int32, n)
	for i := range s.slots {
		s.slots[i] = -1
	}
	s.mask = n - 1
	for e, h := range s.hashes {
		i := h & s.mask
		for s.slots[i] >= 0 {
			i = (i + 1) & s.mask
		}
		s.slots[i] = int32(e)
	}
}
