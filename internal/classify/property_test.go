package classify_test

import (
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/workload"
)

// randomBodyIsomorphicPair builds two self-join-free CQs sharing one
// random acyclic body, with random same-arity heads.
func randomBodyIsomorphicPair(rng *rand.Rand) *cq.UCQ {
	body, _ := workload.RandomAcyclicCQ(rng)
	vars := body.Vars().Sorted()
	arity := 1 + rng.Intn(len(vars))
	pickHead := func() []cq.Variable {
		perm := rng.Perm(len(vars))
		head := make([]cq.Variable, arity)
		for i := 0; i < arity; i++ {
			head[i] = vars[perm[i]]
		}
		return head
	}
	q1 := &cq.CQ{Name: "Q1", Head: pickHead(), Atoms: body.Atoms}
	q2 := &cq.CQ{Name: "Q2", Head: pickHead(), Atoms: body.Atoms}
	return cq.MustUCQ(q1, q2)
}

// TestTheorem29CrossValidation is the dichotomy's consistency check on
// random instances of its domain: for a union of two self-join-free
// body-isomorphic acyclic CQs, the guard conditions of Definition 23 hold
// in both directions if and only if the certificate search proves the
// union free-connex (Theorem 29 / Lemma 28). Any divergence exposes a bug
// in either the guards or the search.
func TestTheorem29CrossValidation(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(2929))
	// When guards hold, Lemma 28 promises a certificate: search generously.
	// When guards fail, NO certificate exists at any budget (Theorem 29),
	// so a small-budget search suffices to catch soundness bugs without
	// exhausting the combination space.
	generous := &core.SearchOptions{MaxVirtualAtoms: 4, MaxRounds: 8}
	frugal := &core.SearchOptions{MaxVirtualAtoms: 2, MaxRounds: 4, MaxCandidates: 64}
	for trial := 0; trial < trials; trial++ {
		u := randomBodyIsomorphicPair(rng)
		rw, ok := classify.RewriteBodyIsomorphic(u)
		if !ok {
			t.Fatalf("trial %d: generated pair not body-isomorphic:\n%s", trial, u)
		}
		guarded := classify.FreePathGuarded(rw, 0, 1) &&
			classify.FreePathGuarded(rw, 1, 0) &&
			classify.BypassGuarded(rw, 0, 1) &&
			classify.BypassGuarded(rw, 1, 0)
		if guarded {
			if _, certified := core.FindCertificate(u, generous); !certified {
				t.Errorf("trial %d: guards hold but no certificate found for\n%s", trial, u)
			}
		} else {
			if _, certified := core.FindCertificate(u, frugal); certified {
				t.Errorf("trial %d: guards fail but a certificate was found for\n%s", trial, u)
			}
		}
	}
}

// TestClassifierNeverContradictsCertificates: on random body-isomorphic
// pairs, a Tractable verdict must come with guards holding, and an
// Intractable verdict must come with a guard violation.
func TestClassifierNeverContradictsCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		u := randomBodyIsomorphicPair(rng)
		res, err := classify.ClassifyUCQ(u, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Two body-isomorphic acyclic sjf CQs: Theorem 29 is a dichotomy,
		// so Unknown is never a valid verdict here.
		if res.Verdict == classify.Unknown {
			t.Errorf("trial %d: dichotomy case classified Unknown:\n%s\n%s", trial, u, res.Reason)
		}
	}
}
