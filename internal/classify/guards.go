package classify

import (
	"repro/internal/cq"
	"repro/internal/homomorphism"
	"repro/internal/hypergraph"
)

// Rewritten is a union of pairwise body-isomorphic CQs brought into a
// single variable space (Section 4.2's "one body with several heads"
// notation): the body of the first CQ is the reference, and each CQ's free
// variables are mapped through a body-isomorphism into that space.
type Rewritten struct {
	U *cq.UCQ
	// Body is the shared reference body (the first CQ).
	Body *cq.CQ
	// H is the hypergraph of the reference body.
	H *hypergraph.Hypergraph
	// Frees[i] is free(Qi) rewritten into the reference variable space.
	Frees []cq.VarSet
	// Isos[i] maps var(Qi) into the reference variable space (Isos[0] is
	// the identity).
	Isos []cq.Substitution
}

// RewrittenHead returns CQ i's head mapped into the reference variable
// space, preserving positional order.
func (r *Rewritten) RewrittenHead(i int) []cq.Variable {
	return r.Isos[i].ApplyAll(r.U.CQs[i].Head)
}

// RewriteBodyIsomorphic checks that all CQs of the union are pairwise
// body-isomorphic and rewrites their heads into the first CQ's variable
// space. The second return value is false when some pair is not
// body-isomorphic.
func RewriteBodyIsomorphic(u *cq.UCQ) (*Rewritten, bool) {
	if len(u.CQs) == 0 {
		return nil, false
	}
	ref := u.CQs[0]
	r := &Rewritten{
		U:     u,
		Body:  ref,
		H:     hypergraph.FromCQ(ref),
		Frees: make([]cq.VarSet, len(u.CQs)),
		Isos:  make([]cq.Substitution, len(u.CQs)),
	}
	r.Frees[0] = ref.Free()
	r.Isos[0] = cq.Substitution{}
	for i := 1; i < len(u.CQs); i++ {
		// FindBodyIsomorphism(q1, q2) returns a mapping from var(q2) to
		// var(q1); we want var(Qi) → var(ref).
		h, ok := homomorphism.FindBodyIsomorphism(ref, u.CQs[i])
		if !ok {
			return nil, false
		}
		r.Frees[i] = h.ApplySet(u.CQs[i].Free())
		r.Isos[i] = h
	}
	return r, true
}

// FreePathsOf returns the free-paths of CQ i, computed on the shared body
// with CQ i's rewritten free variables.
func (r *Rewritten) FreePathsOf(i int) []hypergraph.FreePath {
	return hypergraph.FreePaths(r.H, r.Frees[i])
}

// FreePathGuarded reports whether CQ i is free-path guarded by CQ j
// (Definition 23): every free-path P of Qi satisfies var(P) ⊆ free(Qj).
func FreePathGuarded(r *Rewritten, i, j int) bool {
	for _, p := range r.FreePathsOf(i) {
		if !r.Frees[j].ContainsAll(p.VarSet()) {
			return false
		}
	}
	return true
}

// BypassGuarded reports whether CQ i is bypass guarded by CQ j
// (Definition 23): for every free-path P of Qi and every variable u
// occurring in two subsequent P-atoms, u ∈ free(Qj).
func BypassGuarded(r *Rewritten, i, j int) bool {
	for _, p := range r.FreePathsOf(i) {
		for _, pair := range hypergraph.SubsequentPAtoms(r.H, p) {
			shared := r.H.Edges[pair[0]].Vars.Intersect(r.H.Edges[pair[1]].Vars)
			for u := range shared {
				if !r.Frees[j][u] {
					return false
				}
			}
		}
	}
	return true
}

// UnionGuarded reports whether the free-path p has a union guard
// (Definition 32). A union guard may be assumed to consist of the endpoint
// pair plus triples (za, zb, zc): larger sets only add obligations. Its
// existence reduces to an interval condition — guardable(a, c) holds when
// some a < b < c yields a triple contained in some CQ's free variables with
// both sub-intervals guardable — decided by memoised recursion.
func UnionGuarded(r *Rewritten, p hypergraph.FreePath) bool {
	n := len(p)
	if n < 3 {
		return true
	}
	// The endpoint pair itself must be covered by some CQ's free set.
	if !coveredBySomeFree(r, cq.NewVarSet(p[0], p[n-1])) {
		return false
	}
	memo := make(map[[2]int]int) // 0 unknown, 1 true, 2 false
	var guardable func(a, c int) bool
	guardable = func(a, c int) bool {
		if c <= a+1 {
			return true
		}
		key := [2]int{a, c}
		if v, ok := memo[key]; ok {
			return v == 1
		}
		memo[key] = 2
		for b := a + 1; b < c; b++ {
			if !coveredBySomeFree(r, cq.NewVarSet(p[a], p[b], p[c])) {
				continue
			}
			if guardable(a, b) && guardable(b, c) {
				memo[key] = 1
				return true
			}
		}
		return false
	}
	return guardable(0, n-1)
}

func coveredBySomeFree(r *Rewritten, s cq.VarSet) bool {
	for _, f := range r.Frees {
		if f.ContainsAll(s) {
			return true
		}
	}
	return false
}

// Isolated reports whether the free-path p of CQ i is isolated
// (Definition 34): the shared body is var(p)-connex and no other free-path
// of CQ i shares a variable with p.
func Isolated(r *Rewritten, i int, p hypergraph.FreePath) bool {
	vars := p.VarSet()
	if !r.H.IsSConnex(vars) {
		return false
	}
	pstr := p.String()
	for _, q := range r.FreePathsOf(i) {
		if q.String() == pstr {
			continue
		}
		for _, v := range q {
			if vars[v] {
				return false
			}
		}
	}
	return true
}
