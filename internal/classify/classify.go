// Package classify decides the enumeration complexity of CQs and UCQs with
// respect to DelayClin, following the paper's results:
//
//   - CQs: the Bagan et al. / Brault-Baron dichotomy (Theorem 3);
//   - UCQs, upper bounds: free-connexity via union extensions (Theorem 12),
//     established constructively through internal/core's certificate search;
//   - UCQs, lower bounds: Lemma 14/15 reductions, Theorem 17 (unions of
//     intractable CQs), Theorem 29 (two body-isomorphic CQs, via free-path
//     and bypass guards of Definition 23), and Theorem 33 (union guards of
//     Definition 32), plus Theorem 35 (union guarded + isolated ⇒
//     tractable).
//
// The paper leaves the full dichotomy open; queries outside the reach of
// these results are honestly reported Unknown (Section 5 shows some truly
// are open).
package classify

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/homomorphism"
	"repro/internal/hypergraph"
)

// CQClass is the Theorem 3 trichotomy.
type CQClass int

const (
	// FreeConnex CQs are in DelayClin.
	FreeConnex CQClass = iota
	// AcyclicNotFreeConnex CQs are not in DelayClin (assuming mat-mul) when
	// self-join free.
	AcyclicNotFreeConnex
	// Cyclic CQs are not in DelayClin (assuming hyperclique) when self-join
	// free; even Decide is not linear-time.
	Cyclic
)

// String renders the class.
func (c CQClass) String() string {
	switch c {
	case FreeConnex:
		return "free-connex"
	case AcyclicNotFreeConnex:
		return "acyclic non-free-connex"
	case Cyclic:
		return "cyclic"
	}
	return fmt.Sprintf("CQClass(%d)", int(c))
}

// ClassifyCQ computes the structural class of a single CQ.
func ClassifyCQ(q *cq.CQ) CQClass {
	h := hypergraph.FromCQ(q)
	if !h.IsAcyclic() {
		return Cyclic
	}
	if h.WithEdge(q.Free()).IsAcyclic() {
		return FreeConnex
	}
	return AcyclicNotFreeConnex
}

// Verdict is the outcome of UCQ classification.
type Verdict int

const (
	// Tractable: the UCQ is in DelayClin (certificate or theorem).
	Tractable Verdict = iota
	// Intractable: the UCQ is not in DelayClin under the named hypotheses.
	Intractable
	// Unknown: not covered by the paper's general results.
	Unknown
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Tractable:
		return "tractable"
	case Intractable:
		return "intractable"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Result is a classification outcome with its justification.
type Result struct {
	Verdict Verdict
	// Reason cites the paper result that produced the verdict.
	Reason string
	// Hypotheses lists the complexity assumptions a hardness verdict rests
	// on ("mat-mul", "hyperclique", "4-clique").
	Hypotheses []string
	// Certificate is the executable free-connexity witness, when the
	// verdict is Tractable and the search produced one.
	Certificate *core.Certificate
	// Reduced is the non-redundant union actually classified (contained
	// CQs removed, per Example 1); nil when nothing was removed.
	Reduced *cq.UCQ
}

// Options tunes classification.
type Options struct {
	// Search bounds the free-connexity certificate search.
	Search *core.SearchOptions
	// KeepRedundant skips the containment-based reduction step.
	KeepRedundant bool
}

// ClassifyUCQ classifies a union of conjunctive queries.
func ClassifyUCQ(u *cq.UCQ, opts *Options) (*Result, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	res := &Result{}

	// Step 0: reduce to a non-redundant union (Example 1): a CQ contained
	// in another contributes nothing and can hide tractability.
	work := u
	if !opts.KeepRedundant {
		reduced := homomorphism.RemoveRedundant(u)
		if len(reduced.CQs) != len(u.CQs) {
			res.Reduced = reduced
			work = reduced
		}
	}

	// Lower bounds assume self-join-free CQs; the cheap structural
	// dichotomies run before the (potentially expensive) certificate
	// search — they are mutually exclusive with certificates under the
	// paper's hypotheses.
	sjf := work.SelfJoinFree()

	classes := make([]CQClass, len(work.CQs))
	allIntractable := true
	for i, q := range work.CQs {
		classes[i] = ClassifyCQ(q)
		if classes[i] == FreeConnex {
			allIntractable = false
		}
	}

	if sjf {
		// Step 1: body-isomorphic unions — the Theorem 29/33/35 guard
		// dichotomies decide most of these outright.
		if r := bodyIsomorphicUnion(work, classes, opts.Search); r != nil {
			return finish(res, r), nil
		}
		// Step 2: Lemma 14 / Lemma 15 — an intractable CQ that no other CQ
		// maps into (or only body-isomorphic CQs map into, for cyclic ones)
		// makes the union intractable.
		if r := lemma1415(work, classes); r != nil {
			return finish(res, r), nil
		}
		// Step 3: Theorem 17 — unions of intractable CQs without a
		// body-isomorphic acyclic pair.
		if allIntractable && !hasBodyIsomorphicAcyclicPair(work, classes) {
			res.Verdict = Intractable
			res.Reason = "union of intractable CQs with no body-isomorphic acyclic pair (Theorem 17)"
			res.Hypotheses = []string{"mat-mul", "hyperclique"}
			return res, nil
		}
	}

	// Step 4: upper bound — free-connex UCQs are in DelayClin (Theorem 12;
	// Theorem 4 is the all-free-connex special case).
	if cert, ok := core.FindCertificate(work, opts.Search); ok {
		res.Verdict = Tractable
		res.Certificate = cert
		if cert.TotalVirtualAtoms() == 0 {
			res.Reason = "all CQs free-connex (Theorem 4)"
		} else {
			res.Reason = "free-connex UCQ via union extensions (Theorem 12)"
		}
		return res, nil
	}

	res.Verdict = Unknown
	if sjf {
		res.Reason = "not covered by the paper's general theorems (Section 5 discusses such cases)"
	} else {
		res.Reason = "contains self-joins: the paper's lower-bound machinery does not apply"
	}
	return res, nil
}

// finish merges a step result into the base result (preserving the
// redundancy-reduction note).
func finish(base, step *Result) *Result {
	step.Reduced = base.Reduced
	return step
}

// lemma1415 applies the Lemma 14 and Lemma 15 reductions.
func lemma1415(u *cq.UCQ, classes []CQClass) *Result {
	for i, qi := range u.CQs {
		if classes[i] == FreeConnex {
			continue
		}
		noHom := true
		onlyIsoOrNoHom := true
		for j, qj := range u.CQs {
			if i == j {
				continue
			}
			if homomorphism.ExistsBodyHomomorphism(qj, qi) {
				noHom = false
				if !homomorphism.BodyIsomorphic(qi, qj) {
					onlyIsoOrNoHom = false
				}
			}
		}
		if noHom {
			hyp := "mat-mul"
			if classes[i] == Cyclic {
				hyp = "hyperclique"
			}
			return &Result{
				Verdict: Intractable,
				Reason: fmt.Sprintf("%s is intractable and no other CQ has a body-homomorphism into it, so Enum⟨%s⟩ ≤e Enum⟨Q⟩ (Lemma 14)",
					u.CQs[i].Name, u.CQs[i].Name),
				Hypotheses: []string{hyp},
			}
		}
		if classes[i] == Cyclic && onlyIsoOrNoHom {
			return &Result{
				Verdict: Intractable,
				Reason: fmt.Sprintf("%s is cyclic and only body-isomorphic CQs map into it, so Decide⟨Q⟩ is not linear-time (Lemma 15, Theorem 3)",
					u.CQs[i].Name),
				Hypotheses: []string{"hyperclique"},
			}
		}
	}
	return nil
}

func hasBodyIsomorphicAcyclicPair(u *cq.UCQ, classes []CQClass) bool {
	for i := range u.CQs {
		if classes[i] == Cyclic {
			continue
		}
		for j := i + 1; j < len(u.CQs); j++ {
			if classes[j] == Cyclic {
				continue
			}
			if homomorphism.BodyIsomorphic(u.CQs[i], u.CQs[j]) {
				return true
			}
		}
	}
	return false
}

// bodyIsomorphicUnion handles unions in which all CQs are pairwise
// body-isomorphic, applying Theorem 29 (two CQs), Theorem 33 and Theorem 35
// (n CQs). Tractable verdicts attach an executable certificate when the
// bounded search finds one (the theorems guarantee existence; the search
// bound may still cut it off, which the Reason then notes).
func bodyIsomorphicUnion(u *cq.UCQ, classes []CQClass, search *core.SearchOptions) *Result {
	rewritten, ok := RewriteBodyIsomorphic(u)
	if !ok {
		return nil
	}
	if classes[0] == Cyclic {
		// All cyclic (isomorphic bodies): Theorem 17 territory.
		return nil
	}

	tractable := func(reason string) *Result {
		r := &Result{Verdict: Tractable, Reason: reason}
		if cert, ok := core.FindCertificate(u, search); ok {
			r.Certificate = cert
		} else {
			r.Reason += "; certificate search exceeded its bounds, evaluation falls back to the naive engine"
		}
		return r
	}

	if len(u.CQs) == 2 {
		// Theorem 29 dichotomy.
		g1 := FreePathGuarded(rewritten, 0, 1)
		g2 := FreePathGuarded(rewritten, 1, 0)
		b1 := BypassGuarded(rewritten, 0, 1)
		b2 := BypassGuarded(rewritten, 1, 0)
		if g1 && g2 && b1 && b2 {
			return tractable("two body-isomorphic acyclic CQs, free-path and bypass guarded: free-connex (Theorem 29, Lemma 28)")
		}
		var why []string
		hyp := map[string]bool{}
		if !g1 || !g2 {
			why = append(why, "a free-path is not guarded (Lemma 25)")
			hyp["mat-mul"] = true
		}
		if (g1 && g2) && (!b1 || !b2) {
			why = append(why, "free-path guarded but not bypass guarded (Lemma 26)")
			hyp["4-clique"] = true
		}
		var hyps []string
		for _, h := range []string{"mat-mul", "4-clique"} {
			if hyp[h] {
				hyps = append(hyps, h)
			}
		}
		return &Result{
			Verdict:    Intractable,
			Reason:     "two body-isomorphic acyclic CQs: " + strings.Join(why, "; ") + " (Theorem 29)",
			Hypotheses: hyps,
		}
	}

	// n ≥ 3 body-isomorphic acyclic CQs: Theorems 33 and 35.
	unguarded := false
	allIsolated := true
	for i := range rewritten.Frees {
		for _, p := range rewritten.FreePathsOf(i) {
			if !UnionGuarded(rewritten, p) {
				unguarded = true
			}
			if !Isolated(rewritten, i, p) {
				allIsolated = false
			}
		}
	}
	if unguarded {
		return &Result{
			Verdict:    Intractable,
			Reason:     "union of body-isomorphic acyclic CQs with a free-path that is not union guarded (Theorem 33)",
			Hypotheses: []string{"mat-mul"},
		}
	}
	if allIsolated {
		return tractable("every free-path union guarded and isolated (Theorem 35)")
	}
	// Union guarded but not isolated: outside Theorems 33/35; a union
	// extension may still exist, so consult the certificate search before
	// giving up (Example 31 remains Unknown, as the paper leaves it).
	if cert, ok := core.FindCertificate(u, search); ok {
		return &Result{
			Verdict:     Tractable,
			Reason:      "free-connex UCQ via union extensions (Theorem 12)",
			Certificate: cert,
		}
	}
	return &Result{
		Verdict: Unknown,
		Reason:  "body-isomorphic union with union-guarded but non-isolated free-paths: open (Section 5.1, Example 31)",
	}
}
