package classify

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/paper"
)

func TestClassifyCQ(t *testing.T) {
	cases := []struct {
		src  string
		want CQClass
	}{
		{"Q(x,y,w) <- R1(x,y), R2(y,w).", FreeConnex},
		{"Q(x,y) <- R1(x,z), R2(z,y).", AcyclicNotFreeConnex},
		{"Q(x,y,z) <- R1(x,y), R2(y,z), R3(z,x).", Cyclic},
		{"Q(x) <- R(x).", FreeConnex},
		{"Q() <- R1(x,y), R2(y,z).", FreeConnex},
		{"Q(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).", AcyclicNotFreeConnex},
	}
	for _, tc := range cases {
		q := cq.MustParseCQ(tc.src)
		if got := ClassifyCQ(q); got != tc.want {
			t.Errorf("%s: class = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if FreeConnex.String() == "" || AcyclicNotFreeConnex.String() == "" || Cyclic.String() == "" {
		t.Errorf("empty class strings")
	}
	if Tractable.String() != "tractable" || Intractable.String() != "intractable" || Unknown.String() != "unknown" {
		t.Errorf("verdict strings wrong")
	}
}

// TestPaperGallery is the experiment E9 backbone: for every worked example
// of the paper, the classifier must reproduce the paper's verdict whenever
// it follows from the general theorems, and report Unknown for the ad-hoc
// and open cases.
func TestPaperGallery(t *testing.T) {
	for _, ex := range paper.Gallery() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			res, err := ClassifyUCQ(ex.Query(), nil)
			if err != nil {
				t.Fatalf("ClassifyUCQ: %v", err)
			}
			switch ex.Coverage {
			case paper.GeneralTheorem:
				if res.Verdict.String() != ex.Verdict {
					t.Errorf("verdict = %v (%s), paper says %s", res.Verdict, res.Reason, ex.Verdict)
				}
				if ex.Verdict == "intractable" && len(res.Hypotheses) == 0 {
					t.Errorf("intractable verdict with no hypotheses")
				}
				if ex.Verdict == "tractable" && res.Certificate == nil && !strings.Contains(res.Reason, "Theorem") {
					t.Errorf("tractable verdict with neither certificate nor theorem: %s", res.Reason)
				}
			case paper.AdHoc, paper.Open:
				if res.Verdict != Unknown {
					t.Errorf("verdict = %v (%s), want unknown (paper coverage: %v)",
						res.Verdict, res.Reason, ex.Coverage)
				}
			}
		})
	}
}

func TestExample1RedundancyReduction(t *testing.T) {
	ex, _ := paper.ByName("example1")
	res, err := ClassifyUCQ(ex.Query(), nil)
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res.Reduced == nil || len(res.Reduced.CQs) != 1 {
		t.Errorf("redundant CQ not removed: %v", res.Reduced)
	}
	if res.Verdict != Tractable {
		t.Errorf("verdict = %v", res.Verdict)
	}
	// With KeepRedundant the certificate search still succeeds: Q1 has a
	// free-connex union extension provided by Q2 (which contains it).
	res2, err := ClassifyUCQ(ex.Query(), &Options{KeepRedundant: true})
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res2.Reduced != nil {
		t.Errorf("KeepRedundant still reduced")
	}
}

func TestTheorem29GuardsOnExamples(t *testing.T) {
	// Example 21: both guarded.
	u21 := cq.MustParse(`
		Q1(w,y,x,z) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
		Q2(x,y,w,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	r21, ok := RewriteBodyIsomorphic(u21)
	if !ok {
		t.Fatalf("Example 21 queries not body-isomorphic")
	}
	for i := 0; i < 2; i++ {
		j := 1 - i
		if !FreePathGuarded(r21, i, j) {
			t.Errorf("Example 21: Q%d not free-path guarded", i+1)
		}
		if !BypassGuarded(r21, i, j) {
			t.Errorf("Example 21: Q%d not bypass guarded", i+1)
		}
	}

	// Example 20: Q1 not free-path guarded.
	u20 := cq.MustParse(`
		Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
		Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	r20, ok := RewriteBodyIsomorphic(u20)
	if !ok {
		t.Fatalf("Example 20 queries not body-isomorphic")
	}
	if FreePathGuarded(r20, 0, 1) && FreePathGuarded(r20, 1, 0) {
		t.Errorf("Example 20: both directions guarded; expected a violation")
	}

	// Example 22: guarded but not bypass guarded.
	u22 := cq.MustParse(`
		Q1(x,y,t) <- R1(x,w,t), R2(y,w,t).
		Q2(x,y,w) <- R1(x,w,t), R2(y,w,t).
	`)
	r22, ok := RewriteBodyIsomorphic(u22)
	if !ok {
		t.Fatalf("Example 22 queries not body-isomorphic")
	}
	if !FreePathGuarded(r22, 0, 1) || !FreePathGuarded(r22, 1, 0) {
		t.Errorf("Example 22: free-path guard should hold in both directions")
	}
	if BypassGuarded(r22, 0, 1) {
		t.Errorf("Example 22: Q1 should not be bypass guarded (t bypasses w)")
	}
}

func TestUnionGuardExample31(t *testing.T) {
	u := cq.MustParse(`
		Q1(x1,x2,x3) <- R1(x1,z), R2(x2,z), R3(x3,z).
		Q2(x1,x2,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
		Q3(x1,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
		Q4(x2,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
	`)
	r, ok := RewriteBodyIsomorphic(u)
	if !ok {
		t.Fatalf("Example 31 queries not body-isomorphic")
	}
	paths := r.FreePathsOf(0)
	if len(paths) != 3 {
		t.Fatalf("Q1 free-paths = %v, want 3", paths)
	}
	for _, p := range paths {
		if !UnionGuarded(r, p) {
			t.Errorf("path %v should be union guarded", p)
		}
		if Isolated(r, 0, p) {
			t.Errorf("path %v should not be isolated (paths share z)", p)
		}
	}
}

func TestUnionGuardViolation(t *testing.T) {
	// Three body-isomorphic CQs where no head covers the triple {x,z,y}:
	// the free-path (x,z,y) of Q1 has no union guard.
	u := cq.MustParse(`
		Q1(x,y,u) <- R1(x,z), R2(z,y), R3(y,u).
		Q2(x,z,u) <- R1(x,z), R2(z,y), R3(y,u).
		Q3(y,z,u) <- R1(x,z), R2(z,y), R3(y,u).
	`)
	r, ok := RewriteBodyIsomorphic(u)
	if !ok {
		t.Fatalf("queries not body-isomorphic")
	}
	found := false
	for _, p := range r.FreePathsOf(0) {
		if p.String() == "(x,z,y)" && !UnionGuarded(r, p) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected (x,z,y) to be unguarded")
	}
	res, err := ClassifyUCQ(u, nil)
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res.Verdict != Intractable || !strings.Contains(res.Reason, "Theorem 33") {
		t.Errorf("verdict = %v (%s), want Theorem 33 intractable", res.Verdict, res.Reason)
	}
}

func TestTheorem35TractableUnion(t *testing.T) {
	// Body-isomorphic union where the single free-path (x,z,y) is union
	// guarded (Q2's head covers it) and isolated.
	u := cq.MustParse(`
		Q1(x,y,u) <- R1(x,z), R2(z,y), R3(u).
		Q2(x,z,y) <- R1(x,z), R2(z,y), R3(u).
	`)
	res, err := ClassifyUCQ(u, nil)
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res.Verdict != Tractable {
		t.Errorf("verdict = %v (%s), want tractable", res.Verdict, res.Reason)
	}
}

func TestLemma14DisjointRelations(t *testing.T) {
	// Q2 uses a relation vocabulary disjoint from the intractable Q1.
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,z), R2(z,y).
		Q2(x,y) <- S1(x,y).
	`)
	res, err := ClassifyUCQ(u, nil)
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res.Verdict != Intractable || !strings.Contains(res.Reason, "Lemma 14") {
		t.Errorf("verdict = %v (%s), want Lemma 14 intractable", res.Verdict, res.Reason)
	}
	if len(res.Hypotheses) != 1 || res.Hypotheses[0] != "mat-mul" {
		t.Errorf("hypotheses = %v", res.Hypotheses)
	}
}

func TestLemma15CyclicWithIsomorphicCompanion(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,y), R2(y,z), R3(z,x).
		Q2(y,z) <- R1(x,y), R2(y,z), R3(z,x).
	`)
	res, err := ClassifyUCQ(u, nil)
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res.Verdict != Intractable {
		t.Errorf("verdict = %v (%s), want intractable", res.Verdict, res.Reason)
	}
	if len(res.Hypotheses) == 0 || res.Hypotheses[0] != "hyperclique" {
		t.Errorf("hypotheses = %v, want hyperclique", res.Hypotheses)
	}
}

func TestSelfJoinUnionIsUnknown(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R(x,z), R(z,y).
	`)
	res, err := ClassifyUCQ(u, nil)
	if err != nil {
		t.Fatalf("ClassifyUCQ: %v", err)
	}
	if res.Verdict != Unknown || !strings.Contains(res.Reason, "self-join") {
		t.Errorf("verdict = %v (%s), want unknown due to self-joins", res.Verdict, res.Reason)
	}
}

func TestSingleCQDichotomy(t *testing.T) {
	cases := []struct {
		src     string
		verdict Verdict
	}{
		{"Q(x,y,w) <- R1(x,y), R2(y,w).", Tractable},
		{"Q(x,y) <- R1(x,z), R2(z,y).", Intractable},
		{"Q(x,y,z) <- R1(x,y), R2(y,z), R3(z,x).", Intractable},
	}
	for _, tc := range cases {
		res, err := ClassifyUCQ(cq.MustParse(tc.src), nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if res.Verdict != tc.verdict {
			t.Errorf("%s: verdict = %v (%s), want %v", tc.src, res.Verdict, res.Reason, tc.verdict)
		}
	}
}

func TestInvalidUnionRejected(t *testing.T) {
	bad := &cq.UCQ{}
	if _, err := ClassifyUCQ(bad, nil); err == nil {
		t.Errorf("empty union accepted")
	}
}
