package shard

import (
	"repro/internal/database"
	"repro/internal/enumeration"
)

// ShardedIterator fans one logical union branch out across per-shard
// enumeration iterators. Its shard streams are meant to be spliced straight
// into an enclosing enumeration.ParallelUnion merge via Branches — the
// merge already accepts arbitrary branch iterators — but the type is also a
// self-contained enumeration.Iterator: Next lazily starts its own parallel
// merge over the shards, deduplicating unless the sharding is disjoint.
//
// Like all iterators in this package's ecosystem, a ShardedIterator is
// single-use; abandon it with Close when not drained to exhaustion.
type ShardedIterator struct {
	arity    int
	disjoint bool
	estimate int
	branches []enumeration.Iterator
	merged   *enumeration.ParallelUnion
	spliced  bool
}

// NewShardedIterator wraps one iterator per shard. disjoint asserts that
// the shard streams are pairwise disjoint and duplicate-free (partitioning
// on a head variable); estimate is the expected total answer count, used to
// pre-size the dedup set (≤ 0 when unknown).
func NewShardedIterator(arity int, disjoint bool, estimate int, branches ...enumeration.Iterator) *ShardedIterator {
	return &ShardedIterator{arity: arity, disjoint: disjoint, estimate: estimate, branches: branches}
}

// Branches hands the per-shard iterators to an enclosing merge. After
// Branches the ShardedIterator must not be iterated itself: the shard
// streams are single-use.
func (s *ShardedIterator) Branches() []enumeration.Iterator {
	s.spliced = true
	return s.branches
}

// Disjoint reports whether the shard streams are pairwise disjoint.
func (s *ShardedIterator) Disjoint() bool { return s.disjoint }

// Estimate returns the expected total answer count (≤ 0 when unknown).
func (s *ShardedIterator) Estimate() int { return s.estimate }

// Next implements enumeration.Iterator over the union of the shards.
func (s *ShardedIterator) Next() (database.Tuple, bool) {
	if s.merged == nil {
		if s.spliced {
			panic("shard: ShardedIterator iterated after Branches was taken")
		}
		s.merged = enumeration.NewParallelUnionOpts(s.arity, enumeration.UnionOptions{
			SizeHint: s.estimate,
			Disjoint: s.disjoint,
		}, s.branches...)
	}
	return s.merged.Next()
}

// Close releases the shard workers of a partially drained iterator. It is
// safe to call at any point, including before the first Next: a merge not
// yet started forwards the release to the branch iterators themselves
// (unless Branches handed them to an enclosing merge, which then owns
// them).
func (s *ShardedIterator) Close() {
	if s.merged != nil {
		s.merged.Close()
		return
	}
	if s.spliced {
		return
	}
	for _, b := range s.branches {
		enumeration.CloseIterator(b)
	}
}
