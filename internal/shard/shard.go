// Package shard hash-partitions database instances so that a single heavy
// enumeration branch can fan out across shards. A partitioning is described
// by a Key — the column of each partitioned relation that carries the join
// attribute — and produces N shard instances: partitioned relations keep
// only the rows whose key value hashes to the shard, while every other
// relation is shared by reference (query engines in this repository never
// mutate input relations).
//
// The semantic contract, used by the shard-aware planner in internal/core:
// if every atom of a CQ either carries the partition variable at the
// partitioned column of its relation or refers to a replicated relation,
// then the CQ's answer set over the original instance equals the union of
// its answer sets over the shards — each homomorphism h lands, whole, in
// the shard that h(v) hashes to. When v is additionally a head variable the
// per-shard answer sets are pairwise disjoint, and the union merge can skip
// deduplication entirely.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/database"
)

// Key names the partitioning column of each partitioned relation. Relations
// absent from the map are replicated (shared by reference) to every shard.
type Key map[string]int

// Shard is one hash partition of an instance.
type Shard struct {
	// Inst is the shard-local instance: partitioned relations hold only the
	// rows routed here; all other relations are shared with the original.
	Inst *database.Instance
	// Rows counts the partitioned rows routed to this shard.
	Rows int
	// Keys interns the distinct partition-key values routed here — a
	// shard-local index over the join-key domain, used for cardinality and
	// balance statistics. It is nil for the trivial sharding (N == 1).
	Keys *database.TupleSet
}

// Sharding is a hash partitioning of one instance on one join-key attribute.
type Sharding struct {
	// N is the shard count.
	N int
	// Key is the partitioning attribute, per relation.
	Key Key
	// Shards lists the shard instances, in routing order.
	Shards []*Shard

	totalRows int
}

// validateKey checks the shard count and that every keyed relation exists
// with the column in range.
func validateKey(inst *database.Instance, key Key, n int) error {
	if n < 1 {
		return fmt.Errorf("shard: shard count %d < 1", n)
	}
	if len(key) == 0 {
		return fmt.Errorf("shard: empty partition key")
	}
	for name, col := range key {
		r := inst.Relation(name)
		if r == nil {
			return fmt.Errorf("shard: no relation %q in the instance", name)
		}
		if col < 0 || col >= r.Arity() {
			return fmt.Errorf("shard: column %d out of range for %s/%d", col, name, r.Arity())
		}
	}
	return nil
}

// PartitionCounts computes the per-shard partitioned-row counts of a
// prospective sharding without materialising it — one hash per row, no row
// copies — so the planner can screen candidate attributes for balance
// cheaply before committing to one.
func PartitionCounts(inst *database.Instance, key Key, n int) ([]int, error) {
	if err := validateKey(inst, key, n); err != nil {
		return nil, err
	}
	counts := make([]int, n)
	for name, col := range key {
		r := inst.Relation(name)
		for i := 0; i < r.Len(); i++ {
			counts[Route(r.Row(i)[col], n)]++
		}
	}
	return counts, nil
}

// Partition hash-partitions inst into n shards on the given key. Every
// relation named by the key must exist with the column in range. n == 1
// returns a single shard sharing all relations with inst.
func Partition(inst *database.Instance, key Key, n int) (*Sharding, error) {
	if err := validateKey(inst, key, n); err != nil {
		return nil, err
	}
	s := &Sharding{N: n, Key: key, Shards: make([]*Shard, n)}
	if n == 1 {
		sh := &Shard{Inst: inst.ShallowClone()}
		for name := range key {
			rows := inst.Relation(name).Len()
			sh.Rows += rows
			s.totalRows += rows
		}
		s.Shards[0] = sh
		return s, nil
	}
	parts := make([]*database.Relation, n)
	for i := range s.Shards {
		s.Shards[i] = &Shard{Inst: database.NewInstance(), Keys: database.NewTupleSet(0)}
	}
	for _, name := range inst.Names() {
		r := inst.Relation(name)
		col, partitioned := key[name]
		if !partitioned {
			for i := range s.Shards {
				s.Shards[i].Inst.AddRelation(r)
			}
			continue
		}
		for i := range parts {
			parts[i] = database.NewRelation(name, r.Arity())
		}
		keyTuple := make(database.Tuple, 1)
		for i := 0; i < r.Len(); i++ {
			row := r.Row(i)
			keyTuple[0] = row[col]
			sh := Route(row[col], n)
			parts[sh].Append(row...)
			s.Shards[sh].Keys.Insert(keyTuple)
		}
		for i := range parts {
			s.Shards[i].Inst.AddRelation(parts[i])
			s.Shards[i].Rows += parts[i].Len()
			s.totalRows += parts[i].Len()
		}
	}
	return s, nil
}

// TotalRows returns the number of rows across partitioned relations.
func (s *Sharding) TotalRows() int { return s.totalRows }

// MaxShare returns the largest fraction of partitioned rows routed to a
// single shard — the balance metric the planner uses to reject skewed
// partition attributes. It returns 0 for an empty partitioning.
func (s *Sharding) MaxShare() float64 {
	if s.totalRows == 0 {
		return 0
	}
	max := 0
	for _, sh := range s.Shards {
		if sh.Rows > max {
			max = sh.Rows
		}
	}
	return float64(max) / float64(s.totalRows)
}

// DistinctKeys returns the number of distinct partition-key values routed
// to shard i (0 for the trivial sharding, which keeps no key index).
func (s *Sharding) DistinctKeys(i int) int {
	if s.Shards[i].Keys == nil {
		return 0
	}
	return s.Shards[i].Keys.Len()
}

// String summarises the sharding: shard count, partitioned relations and
// the per-shard row balance.
func (s *Sharding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharding n=%d on {", s.N)
	first := true
	for _, name := range sortedNames(s.Key) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s[%d]", name, s.Key[name])
	}
	b.WriteString("} rows=[")
	for i, sh := range s.Shards {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d", sh.Rows)
	}
	b.WriteString("]")
	return b.String()
}

func sortedNames(k Key) []string {
	out := make([]string, 0, len(k))
	for name := range k {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
