package shard

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
)

// productSkewInstance builds R(y,u), S(y,v) data with one heavy join key:
// key 1 holds `heavy` rows in both relations, keys 2..2+light hold one row
// each. The *input* routed by y stays nearly balanced (one moderately
// heavy value among many light ones), but the join output concentrates —
// the heavy key contributes heavy² output tuples against the light keys'
// one each. The u column of R is all-distinct, so partitioning on u is
// balanced on every measure.
func productSkewInstance(heavy, light int) *database.Instance {
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	s := database.NewRelation("S", 2)
	next := int64(1000)
	for i := 0; i < heavy; i++ {
		r.AppendInts(1, next)
		s.AppendInts(1, next+1)
		next += 2
	}
	for k := int64(2); k < int64(2+light); k++ {
		r.AppendInts(k, next)
		s.AppendInts(k, next+1)
		next += 2
	}
	inst.AddRelation(r)
	inst.AddRelation(s)
	return inst
}

// TestMaxOutputShareDetectsProductSkew pins the gap the estimator closes:
// a partition attribute whose input rows route evenly across shards but
// whose join output — the per-key frequency *products* — lands mostly on
// one shard. Input balance alone would accept it; the output estimate
// must flag it.
func TestMaxOutputShareDetectsProductSkew(t *testing.T) {
	const n = 8
	inst := productSkewInstance(20, 380)
	key := Key{"R": 0, "S": 0}

	counts, err := PartitionCounts(inst, key, n)
	if err != nil {
		t.Fatal(err)
	}
	input := maxShare(counts)
	if limit := skewLimit(n); input > limit {
		t.Fatalf("input share %.3f exceeds limit %.3f; instance no longer input-balanced, test is vacuous", input, limit)
	}

	out := MaxOutputShare(inst, key, n)
	if limit := skewLimit(n); out <= limit {
		t.Errorf("output share %.3f ≤ limit %.3f; product skew went undetected (input share %.3f)", out, skewLimit(n), input)
	}
	// CandidateShare must carry the worse of the two signals.
	if got := CandidateShare(inst, key, n); got < out {
		t.Errorf("CandidateShare = %.3f, want ≥ output share %.3f", got, out)
	}
}

// TestChooseAndPartitionAvoidsOutputSkew pins the planner behavior: with
// two head candidates — y (more atoms, sorts first, output-skewed) and u
// (fewer atoms, balanced) — ChooseAndPartition must pass over y and
// commit to u. Before the output estimate, y's even input routing made it
// the pick.
func TestChooseAndPartitionAvoidsOutputSkew(t *testing.T) {
	const n = 8
	inst := productSkewInstance(20, 380)
	q, err := cq.NewCQ("Q",
		[]cq.Variable{"y", "u"},
		[]cq.Atom{
			{Rel: "R", Vars: []cq.Variable{"y", "u"}},
			{Rel: "S", Vars: []cq.Variable{"y", "v"}},
		})
	if err != nil {
		t.Fatal(err)
	}

	cands := Candidates(q, inst)
	if len(cands) < 2 || cands[0].Var != "y" {
		t.Fatalf("candidate order changed, want y first: %+v", cands)
	}

	_, chosen, ok := ChooseAndPartition(q, inst, n)
	if !ok {
		t.Fatal("no sharding chosen")
	}
	if chosen.Var != "u" {
		t.Errorf("chose %s (share %.3f), want u — y's output skew should disqualify it",
			chosen.Var, CandidateShare(inst, chosen.Key, n))
	}
}

// TestEstimateOutputWeightsDegenerate pins the nil returns: empty
// relations and invalid shard counts yield no estimate, and
// MaxOutputShare then reports 0 (unknown) rather than a fake balance.
func TestEstimateOutputWeightsDegenerate(t *testing.T) {
	inst := database.NewInstance()
	inst.AddRelation(database.NewRelation("R", 2))
	key := Key{"R": 0}
	if w := EstimateOutputWeights(inst, key, 4); w != nil {
		t.Errorf("weights over empty relation = %v, want nil", w)
	}
	if s := MaxOutputShare(inst, key, 4); s != 0 {
		t.Errorf("share over empty relation = %v, want 0", s)
	}
	if w := EstimateOutputWeights(productSkewInstance(2, 2), key, 0); w != nil {
		t.Errorf("weights with n=0 = %v, want nil", w)
	}
}

// TestKeyFrequenciesSampling pins the stride scaling: sampled totals stay
// within a factor of the true row count, so shares remain comparable
// across relations of different sizes.
func TestKeyFrequenciesSampling(t *testing.T) {
	r := database.NewRelation("R", 1)
	const rows = 3 * skewSampleCap
	for i := 0; i < rows; i++ {
		r.AppendInts(int64(i % 7))
	}
	freq := keyFrequencies(r, 0, skewSampleCap)
	total := 0.0
	for _, f := range freq {
		total += f
	}
	if total < rows/2 || total > rows*2 {
		t.Errorf("scaled sample total %.0f far from true %d rows", total, rows)
	}
}
