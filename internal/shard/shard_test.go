package shard

import (
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/workload"
)

// buildJoinInstance makes R1(x,y), R2(y,w) data with given sizes.
func buildJoinInstance(n1, n2 int) *database.Instance {
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	for i := 0; i < n1; i++ {
		r1.AppendInts(int64(i), int64(i%17))
	}
	r2 := database.NewRelation("R2", 2)
	for i := 0; i < n2; i++ {
		r2.AppendInts(int64(i%17), int64(i))
	}
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	return inst
}

// TestPartitionInvariants checks row preservation, routing and replication.
func TestPartitionInvariants(t *testing.T) {
	inst := buildJoinInstance(500, 300)
	for _, n := range []int{1, 2, 8} {
		s, err := Partition(inst, Key{"R1": 1, "R2": 0}, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(s.Shards) != n {
			t.Fatalf("n=%d: got %d shards", n, len(s.Shards))
		}
		total := 0
		distinct := 0
		for i, sh := range s.Shards {
			r1 := sh.Inst.Relation("R1")
			r2 := sh.Inst.Relation("R2")
			if r1 == nil || r2 == nil {
				t.Fatalf("n=%d shard %d: missing relations", n, i)
			}
			total += r1.Len() + r2.Len()
			distinct += s.DistinctKeys(i)
			if n == 1 {
				continue
			}
			// Every row's key value must hash to this shard.
			for _, rel := range []*database.Relation{r1} {
				for j := 0; j < rel.Len(); j++ {
					v := rel.Row(j)[1]
					if int(database.Tuple{v}.Hash()%uint64(n)) != i {
						t.Fatalf("n=%d: row routed to wrong shard", n)
					}
				}
			}
		}
		if total != 800 {
			t.Fatalf("n=%d: %d rows across shards, want 800", n, total)
		}
		if n > 1 && distinct != 17 {
			t.Fatalf("n=%d: %d distinct keys across shards, want 17", n, distinct)
		}
		if s.TotalRows() != 800 {
			t.Fatalf("n=%d: TotalRows = %d", n, s.TotalRows())
		}
	}
}

// TestPartitionReplicates checks relations outside the key are shared.
func TestPartitionReplicates(t *testing.T) {
	inst := buildJoinInstance(100, 50)
	s, err := Partition(inst, Key{"R1": 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := inst.Relation("R2")
	for i, sh := range s.Shards {
		if sh.Inst.Relation("R2") != orig {
			t.Fatalf("shard %d: R2 not shared by reference", i)
		}
	}
}

// TestPartitionErrors covers the validation paths.
func TestPartitionErrors(t *testing.T) {
	inst := buildJoinInstance(10, 10)
	if _, err := Partition(inst, Key{"R1": 1}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Partition(inst, Key{}, 2); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := Partition(inst, Key{"Nope": 0}, 2); err == nil {
		t.Fatal("missing relation accepted")
	}
	if _, err := Partition(inst, Key{"R1": 7}, 2); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

// TestCandidatesJoinQuery checks safety and ranking on a two-atom join.
func TestCandidatesJoinQuery(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := buildJoinInstance(200, 100)
	cands := Candidates(q, inst)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3 (x, y, w): %+v", len(cands), cands)
	}
	// y covers both atoms and is a head variable: it must rank first.
	if cands[0].Var != "y" || !cands[0].Head || cands[0].Atoms != 2 {
		t.Fatalf("best candidate = %+v, want y covering 2 atoms", cands[0])
	}
	if cands[0].Key["R1"] != 1 || cands[0].Key["R2"] != 0 {
		t.Fatalf("y key = %v", cands[0].Key)
	}
}

// TestCandidatesSelfJoinUnsafe: a self-join placing the variable at
// conflicting columns has no safe attribute at all.
func TestCandidatesSelfJoinUnsafe(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y,z) <- R(x,y), R(y,z).")
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	r.AppendInts(1, 2)
	inst.AddRelation(r)
	if cands := Candidates(q, inst); len(cands) != 0 {
		t.Fatalf("self-join produced candidates %+v, want none", cands)
	}
	if _, _, ok := ChooseAndPartition(q, inst, 4); ok {
		t.Fatal("ChooseAndPartition found an attribute for an unsafe query")
	}
}

// TestCandidatesRepeatedVarSameColumn: a self-join keeping the variable at
// one common column stays safe.
func TestCandidatesRepeatedVarSameColumn(t *testing.T) {
	q := cq.MustParseCQ("Q(c,x,y) <- R(c,x), R(c,y).")
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	r.AppendInts(1, 2)
	r.AppendInts(1, 3)
	inst.AddRelation(r)
	cands := Candidates(q, inst)
	if len(cands) != 1 || cands[0].Var != "c" || cands[0].Key["R"] != 0 {
		t.Fatalf("candidates = %+v, want exactly c at column 0", cands)
	}
}

// TestChooseAndPartitionAvoidsSkew: when the top-ranked attribute routes
// most input to one shard, the planner falls to a balanced one.
func TestChooseAndPartitionAvoidsSkew(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	// One y value dominates R1, so partitioning on y concentrates the
	// input; partitioning on x splits it evenly.
	inst := workload.SkewedJoin(4000, 8, 37, 40, 3, 1)
	n := 8
	s, cand, ok := ChooseAndPartition(q, inst, n)
	if !ok {
		t.Fatal("no attribute chosen")
	}
	if cand.Var == "y" {
		t.Fatalf("planner chose the skewed attribute y (share %.2f)", s.MaxShare())
	}
	if share := s.MaxShare(); share > skewLimit(n) {
		t.Fatalf("chosen attribute %s still skewed: share %.2f", cand.Var, share)
	}
}

// TestChooseAndPartitionRejectsSkewedExistential: when the only safe
// attribute is an existential variable and every candidate is hopelessly
// skewed, the planner must fall back to unsharded evaluation rather than
// ship a near-degenerate sharding with dedup still on.
func TestChooseAndPartitionRejectsSkewedExistential(t *testing.T) {
	q := cq.MustParseCQ("Q() <- R1(z), R2(z).")
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 1)
	r2 := database.NewRelation("R2", 1)
	// A single join value: every candidate routes 100% of rows together.
	r1.AppendInts(9)
	r2.AppendInts(9)
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	if _, cand, ok := ChooseAndPartition(q, inst, 8); ok {
		t.Fatalf("skewed existential attribute %s accepted", cand.Var)
	}
}

// TestChooseAndPartitionKeepsSkewedHead: a skewed head attribute is still
// worth sharding — disjoint shard streams let the merge skip dedup — so the
// planner accepts the least-skewed head candidate when nothing balances.
func TestChooseAndPartitionKeepsSkewedHead(t *testing.T) {
	q := cq.MustParseCQ("Q(x,w) <- R1(x,z), R2(z,w).")
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	r2 := database.NewRelation("R2", 2)
	// Every column is dominated by one value: x and w (heads) are constant
	// on ~90% of rows, and the join key z concentrates the same way.
	for i := int64(0); i < 540; i++ {
		r1.AppendInts(7, 0)
		r2.AppendInts(0, 5)
	}
	for i := int64(1); i <= 60; i++ {
		r1.AppendInts(7, i)
		r2.AppendInts(i, 5)
	}
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	s, cand, ok := ChooseAndPartition(q, inst, 8)
	if !ok {
		t.Fatal("skewed head attribute rejected; dedup-free sharding lost")
	}
	if !cand.Head {
		t.Fatalf("chose %+v, want a head variable", cand)
	}
	if s.N != 8 {
		t.Fatalf("sharding N = %d", s.N)
	}
}

// TestShardedIteratorUnion: the standalone iterator merges shard streams
// into the full answer set.
func TestShardedIteratorUnion(t *testing.T) {
	mk := func(base, n int) []database.Tuple {
		out := make([]database.Tuple, n)
		for i := range out {
			out[i] = database.Tuple{database.V(int64(base + i))}
		}
		return out
	}
	for _, disjoint := range []bool{false, true} {
		it := NewShardedIterator(1, disjoint, 60,
			enumeration.NewSliceIterator(mk(0, 20)),
			enumeration.NewSliceIterator(mk(20, 20)),
			enumeration.NewSliceIterator(mk(40, 20)))
		var got []int
		for {
			tup, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, int(tup[0].Payload()))
		}
		sort.Ints(got)
		if len(got) != 60 || got[0] != 0 || got[59] != 59 {
			t.Fatalf("disjoint=%v: merged %d answers (range %v..%v), want 0..59",
				disjoint, len(got), got[0], got[len(got)-1])
		}
	}
}
