package shard

import (
	"testing"

	"repro/internal/database"
)

// TestStableCrossNodeRouting pins exact KeyHash/Route outputs. These
// vectors are the cross-node routing contract: every node of a cluster
// must agree on where a key routes, so a hash change that would be
// harmless in a single process (any consistent hash partitions correctly)
// is a wire-breaking change here. If this test fails, the hash changed —
// that requires re-registering every distributed dataset, not a test
// update in passing.
func TestStableCrossNodeRouting(t *testing.T) {
	vectors := []struct {
		v      database.Value
		hash   uint64
		route3 int
		route8 int
	}{
		{database.V(0), 0xb9034ad37056f5fb, 0, 3},
		{database.V(1), 0xd7cea42b5057e4c, 0, 4},
		{database.V(2), 0x5aec852590056221, 2, 1},
		{database.V(7), 0xd8c9bb075c493102, 2, 2},
		{database.V(42), 0x1d273896e8641a1d, 1, 5},
		{database.V(1000), 0x45447a64e6e80c71, 1, 1},
		{database.V(-1), 0x44ab1c66f1772e96, 1, 6},
		{database.V(123456789), 0xe092c63cfc12093, 1, 3},
	}
	for _, tc := range vectors {
		if got := KeyHash(tc.v); got != tc.hash {
			t.Errorf("KeyHash(%v) = %#x, pinned %#x — cross-node routing contract broken", tc.v, got, tc.hash)
		}
		if got := Route(tc.v, 3); got != tc.route3 {
			t.Errorf("Route(%v, 3) = %d, pinned %d", tc.v, got, tc.route3)
		}
		if got := Route(tc.v, 8); got != tc.route8 {
			t.Errorf("Route(%v, 8) = %d, pinned %d", tc.v, got, tc.route8)
		}
	}
}

// TestStableStringHashVectors pins StableStringHash the same way; cluster
// rendezvous placement depends on every coordinator instance agreeing.
func TestStableStringHashVectors(t *testing.T) {
	vectors := []struct {
		s      string
		hash   uint64
		route4 int
	}{
		{"", 0xefd01f60ba992926, 2},
		{"a", 0x82a2a958a9bece5b, 3},
		{"orders", 0x32520fbdb4dad5b9, 1},
		{"http://w1:8454", 0xfb82f0e7e6261ada, 2},
		{"skewed-join", 0x967754413beacc30, 0},
	}
	for _, tc := range vectors {
		if got := StableStringHash(tc.s); got != tc.hash {
			t.Errorf("StableStringHash(%q) = %#x, pinned %#x", tc.s, got, tc.hash)
		}
		if got := RouteString(tc.s, 4); got != tc.route4 {
			t.Errorf("RouteString(%q, 4) = %d, pinned %d", tc.s, got, tc.route4)
		}
	}
}

// TestPartitionUsesRouteContract checks that Partition and PartitionCounts
// route through the same contract: every partitioned row must land on the
// shard Route names for its key value.
func TestPartitionUsesRouteContract(t *testing.T) {
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	for i := int64(0); i < 100; i++ {
		r.Append(database.V(i%17), database.V(i))
	}
	inst.AddRelation(r)

	const n = 4
	key := Key{"R": 0}
	s, err := Partition(inst, key, n)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := PartitionCounts(inst, key, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range s.Shards {
		if sh.Rows != counts[i] {
			t.Errorf("shard %d: Partition routed %d rows, PartitionCounts predicted %d", i, sh.Rows, counts[i])
		}
		part := sh.Inst.Relation("R")
		for j := 0; j < part.Len(); j++ {
			if got := Route(part.Row(j)[0], n); got != i {
				t.Errorf("row with key %v landed on shard %d, Route says %d", part.Row(j)[0], i, got)
			}
		}
	}
}
