package shard

import "repro/internal/database"

// Output-skew estimation. PartitionCounts measures how evenly a candidate
// attribute splits the *input* rows, but join output concentrates where
// per-relation frequencies multiply: a key value holding 1% of every
// relation's rows holds far more than 1% of the join's output when the
// relations are large. A candidate that routes inputs evenly can therefore
// still route almost the whole output to one shard. The estimator below
// samples per-relation join-key frequencies and weights every sampled key
// by the product of its frequencies across the partitioned relations —
// the number of output tuples the key can contribute to their join — and
// accumulates the weights per shard with the same hash routing Partition
// uses.

// skewSampleCap bounds the rows examined per relation while estimating
// output skew; larger relations are stride-sampled and the frequencies
// scaled back up, keeping the probe O(sampleCap) per relation.
const skewSampleCap = 4096

// keyFrequencies counts rows per join-key value in column col of r,
// stride-sampling at most cap rows and scaling the counts by the stride so
// the totals remain comparable across relations of different sizes.
func keyFrequencies(r *database.Relation, col, limit int) map[database.Value]float64 {
	n := r.Len()
	if n == 0 {
		return nil
	}
	stride := 1
	if n > limit {
		stride = (n + limit - 1) / limit
	}
	freq := make(map[database.Value]float64, limit)
	for i := 0; i < n; i += stride {
		freq[r.Row(i)[col]] += float64(stride)
	}
	return freq
}

// EstimateOutputWeights estimates the per-shard share of the join output a
// prospective sharding would produce: for each partitioned relation the
// per-key frequencies are (sample-)counted, each key surviving in every
// relation is weighted by the product of its frequencies, and the weight
// is routed to the shard the key hashes to. The result sums the weights
// per shard; nil when the estimate degenerates (no partitioned rows or an
// empty join). The weights are an estimate of output volume, not answer
// count — projections and other atoms scale all shards alike, which
// cancels in the share.
func EstimateOutputWeights(inst *database.Instance, key Key, n int) []float64 {
	if n < 1 {
		return nil
	}
	freqs := make([]map[database.Value]float64, 0, len(key))
	smallest := -1
	for name, col := range key {
		r := inst.Relation(name)
		if r == nil || r.Len() == 0 {
			return nil
		}
		f := keyFrequencies(r, col, skewSampleCap)
		freqs = append(freqs, f)
		if smallest < 0 || len(f) < len(freqs[smallest]) {
			smallest = len(freqs) - 1
		}
	}
	if len(freqs) == 0 {
		return nil
	}
	weights := make([]float64, n)
	total := 0.0
	keyTuple := make(database.Tuple, 1)
	for v := range freqs[smallest] {
		w := 1.0
		for _, f := range freqs {
			c, ok := f[v]
			if !ok {
				// Sampling can miss a key present in the relation; treat a
				// miss as one row rather than dropping the key outright, so
				// heavy keys elsewhere still register.
				c = 1
			}
			w *= c
		}
		keyTuple[0] = v
		weights[keyTuple.Hash()%uint64(n)] += w
		total += w
	}
	if total == 0 {
		return nil
	}
	return weights
}

// MaxOutputShare returns the largest per-shard fraction of the estimated
// join output for the candidate sharding, or 0 when no estimate is
// available (the caller should then fall back to input balance alone).
func MaxOutputShare(inst *database.Instance, key Key, n int) float64 {
	weights := EstimateOutputWeights(inst, key, n)
	if weights == nil {
		return 0
	}
	total, max := 0.0, 0.0
	for _, w := range weights {
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return 0
	}
	return max / total
}
