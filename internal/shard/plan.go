package shard

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/database"
)

// Candidate is one safe partition attribute of a CQ: a variable v together
// with the per-relation column map realising it. Safety means every atom of
// a partitioned relation carries v at the partitioned column, so the
// shard-union of the CQ's answers equals the unsharded answer set (see the
// package comment).
type Candidate struct {
	// Var is the partition variable.
	Var cq.Variable
	// Key maps each partitioned relation to the column holding Var.
	Key Key
	// Head reports whether Var is a head variable of the query; if so the
	// per-shard answer sets are pairwise disjoint and the merge may skip
	// deduplication.
	Head bool
	// Atoms counts the atoms covered (partitioned rather than replicated).
	Atoms int
	// Rows is the total row count of the partitioned relations — the input
	// volume the sharding actually splits.
	Rows int
}

// Candidates enumerates the safe partition attributes of q over inst, best
// first: head variables (disjoint shard outputs) before existential ones,
// then by atoms covered, then by partitioned input volume. It returns nil
// when the query has no safe attribute — e.g. a self-join placing the
// variable at different columns — in which case the planner falls back to
// unsharded evaluation.
func Candidates(q *cq.CQ, inst *database.Instance) []Candidate {
	byRel := make(map[string][]cq.Atom)
	for _, a := range q.Atoms {
		byRel[a.Rel] = append(byRel[a.Rel], a)
	}
	free := q.Free()
	var out []Candidate
	for _, v := range q.Vars().Sorted() {
		key := Key{}
		atoms := 0
		safe := true
		for rel, as := range byRel {
			with := 0
			for _, a := range as {
				if a.HasVar(v) {
					with++
				}
			}
			if with == 0 {
				continue // replicated
			}
			if with < len(as) {
				safe = false // some atom of rel needs the full relation
				break
			}
			// A column carrying v in every atom of rel.
			col := -1
			for c := range as[0].Vars {
				common := true
				for _, a := range as {
					if a.Vars[c] != v {
						common = false
						break
					}
				}
				if common {
					col = c
					break
				}
			}
			if col < 0 {
				safe = false // v sits at conflicting columns across atoms
				break
			}
			key[rel] = col
			atoms += with
		}
		if !safe || len(key) == 0 {
			continue
		}
		rows := 0
		for rel := range key {
			if r := inst.Relation(rel); r != nil {
				rows += r.Len()
			}
		}
		out = append(out, Candidate{Var: v, Key: key, Head: free.Contains(v), Atoms: atoms, Rows: rows})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Head != b.Head {
			return a.Head
		}
		if a.Atoms != b.Atoms {
			return a.Atoms > b.Atoms
		}
		if a.Rows != b.Rows {
			return a.Rows > b.Rows
		}
		return a.Var < b.Var
	})
	return out
}

// maxCandidateTries bounds how many candidate attributes ChooseAndPartition
// will materialise while hunting for a balanced split.
const maxCandidateTries = 4

// skewLimit is the largest acceptable MaxShare for an n-way sharding: three
// times the perfectly balanced share, so small shard counts accept almost
// anything and large ones reject attributes dominated by one hash bucket.
func skewLimit(n int) float64 {
	return 3.0 / float64(n)
}

// ChooseAndPartition picks a partition attribute for q and materialises the
// sharding, preferring disjoint (head-variable) candidates and screening
// each candidate's balance before committing — a skewed join key would
// concentrate the fan-out on one shard. Balance is judged on both the
// input rows (a count-only routing pass) and the estimated *output* (the
// sampled join-key-frequency products of MaxOutputShare): an attribute
// that splits the rows evenly can still send nearly all of the join
// fan-out to one shard, and it is the output the shards must enumerate.
// When every candidate routes too unevenly, the best-balanced head
// candidate is still accepted (its disjoint shard streams let the merge
// skip deduplication, which pays for itself regardless of balance) but a
// lone existential one is not: a skewed sharding with dedup still on is
// pure overhead, so the planner reports false and the caller evaluates
// unsharded. False is also reported when q has no safe attribute at all.
func ChooseAndPartition(q *cq.CQ, inst *database.Instance, n int) (*Sharding, Candidate, bool) {
	cands := Candidates(q, inst)
	if len(cands) == 0 || n < 1 {
		return nil, Candidate{}, false
	}
	limit := skewLimit(n)
	bestHead := Candidate{}
	bestShare := 2.0
	haveHead := false
	for i, cand := range cands {
		if i >= maxCandidateTries {
			break
		}
		share := CandidateShare(inst, cand.Key, n)
		if share < 0 {
			continue
		}
		if n == 1 || share <= limit {
			s, err := Partition(inst, cand.Key, n)
			if err != nil {
				continue
			}
			return s, cand, true
		}
		if cand.Head && share < bestShare {
			bestHead, bestShare, haveHead = cand, share, true
		}
	}
	if !haveHead {
		return nil, Candidate{}, false
	}
	s, err := Partition(inst, bestHead.Key, n)
	if err != nil {
		return nil, Candidate{}, false
	}
	return s, bestHead, true
}

// CandidateShare scores one candidate sharding's imbalance: the worse of
// its input share (exact row routing) and estimated output share (sampled
// join-key-frequency products), each the largest fraction a single shard
// receives. It returns a value in [0, 1], or -1 when the candidate cannot
// be scored (invalid key). Lower is better; 1/n is perfectly balanced.
func CandidateShare(inst *database.Instance, key Key, n int) float64 {
	counts, err := PartitionCounts(inst, key, n)
	if err != nil {
		return -1
	}
	share := maxShare(counts)
	if out := MaxOutputShare(inst, key, n); out > share {
		share = out
	}
	return share
}

// maxShare returns the largest fraction a single count holds of the total
// (0 when the total is 0).
func maxShare(counts []int) float64 {
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}
