package shard

import "repro/internal/database"

// Cross-node routing contract.
//
// A distributed deployment routes by hashing partition-key values on
// whichever node holds the row, and the coordinator assumes every node
// agrees on the result. That only holds if the hash is a pure function of
// the value — no per-process seed, no architecture dependence, no
// map-iteration order. KeyHash and Route are that contract: they are the
// single routing primitive for both in-process sharding (Partition,
// PartitionCounts) and cross-node placement (internal/cluster), and
// stable_test.go pins exact output vectors so that any change to the
// underlying hash fails loudly instead of silently splitting the cluster's
// view of where a key lives.

// KeyHash returns the stable routing hash of one partition-key value. It
// is deterministic across processes, machines and architectures.
func KeyHash(v database.Value) uint64 {
	key := [1]database.Value{v}
	return database.Tuple(key[:]).Hash()
}

// Route maps a partition-key value to a shard in [0, n). n must be ≥ 1.
func Route(v database.Value, n int) int {
	return int(KeyHash(v) % uint64(n))
}

// StableStringHash hashes a string with the same stability guarantee as
// KeyHash: FNV-1a over the bytes, finished with the same avalanche mix the
// tuple hash uses, so short keys still spread over the full 64-bit range.
// internal/cluster uses it for rendezvous placement (picking which worker
// owns a dataset's probe and fallback traffic).
func StableStringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// The same finalizer as database.Tuple.Hash: MurmurHash3's fmix64.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// RouteString maps a string key to a bucket in [0, n). n must be ≥ 1.
func RouteString(s string, n int) int {
	return int(StableStringHash(s) % uint64(n))
}
