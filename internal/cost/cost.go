// Package cost is the planner's execution cost model: given what the bind
// path already knows about one (query, instance) pair — relation
// cardinalities, exact output counts where the Theorem 12 machinery
// provides them, the estimated output skew of the best partition
// attribute, and the machine's parallelism — it picks the execution mode,
// shard count and worker count that the five hand-selected strategies
// (sequential, parallel, work-stealing, sharded, naive variants) used to
// leave to flags.
//
// The model follows the fine-grained refinements of the dichotomy: the
// query's class decides what is *possible* (free-connex ⇒ constant delay),
// but the instance's shape decides what is *fast* — unbalanced instances
// reward sharding exactly when the output, not just the input, splits
// evenly (Bringmann–Carmeli 2022), and tiny instances reward none of it.
// Decide is a pure function of its Inputs, so a decision is reproducible
// (and cacheable) for a given instance snapshot and CPU count.
package cost

import "fmt"

// Inputs is everything Decide looks at. All fields are observable at bind
// time without enumerating: Rows and Branches from the instance and the
// prepared query, Answers from the Theorem 12 counting pass (exact per
// certified branch), the sharding fields from the output-skew probe over
// the candidate partition attributes, and CPUs from GOMAXPROCS.
type Inputs struct {
	// ConstantDelay states whether the prepared query certified
	// free-connex (the Theorem 12 pipeline) or fell back to the naive
	// evaluator.
	ConstantDelay bool
	// Rows is the instance's total tuple count across relations.
	Rows int
	// Answers is the exact output cardinality upper bound (summed branch
	// counts; certified plans only), or -1 when unknown (naive mode
	// cannot count without evaluating).
	Answers int64
	// Branches counts the union's independent top-level streams: certified
	// extensions in constant-delay mode, member CQs in naive mode.
	Branches int
	// CPUs is the parallelism available at decision time (GOMAXPROCS).
	CPUs int
	// ShardableDisjoint reports whether sharding the union would keep the
	// merge dedup-free: every extension has a head-variable partition
	// attribute and the union is a single branch with no bonus answers.
	// This is the regime where sharding beats plain work stealing — the
	// per-answer dedup probe disappears entirely.
	ShardableDisjoint bool
	// OutputShare estimates the largest fraction of the *output* a single
	// shard would receive under the best candidate attribute at CPUs
	// shards (sampled join-key frequencies; 0 = unknown or empty output).
	// Input-balanced attributes can still route most of the join fan-out
	// to one shard; this is the signal that catches it.
	OutputShare float64
	// MemBudget is the largest number of distinct answers the merge's
	// dedup set may hold in memory, or 0 for unbounded. The Theorem 12
	// counting pass makes Answers exact for certified plans, so an
	// over-budget answer set is known at bind time, before the first
	// answer is enumerated.
	MemBudget int64
}

// Decision is the resolved execution configuration plus its provenance:
// the knobs Auto picked, a human-readable reason, and the inputs the
// choice was made from, surfaced through Plan.Explain and /stats so a
// regressed decision is observable rather than a silent slowdown.
type Decision struct {
	// Parallel, Shards and Workers are the resolved PlanOptions knobs.
	// They always satisfy PlanOptions validation: Shards and Workers are
	// zero unless Parallel is set.
	Parallel bool
	Shards   int
	Workers  int
	// Spill directs the merge's dedup set to the disk-backed table once it
	// outgrows Inputs.MemBudget. Only set when the chosen mode carries a
	// dedup set: a dedup-free disjoint sharded merge has nothing to spill.
	Spill bool
	// Reason explains the pick in one sentence.
	Reason string
	// Inputs echoes what the decision was made from.
	Inputs Inputs
}

// Kind names the resolved strategy: "sequential", "parallel" or "sharded".
func (d *Decision) Kind() string {
	switch {
	case d.Shards > 0:
		return "sharded"
	case d.Parallel:
		return "parallel"
	default:
		return "sequential"
	}
}

// String renders the decision with its reason.
func (d *Decision) String() string {
	return fmt.Sprintf("%s (parallel=%v shards=%d workers=%d): %s",
		d.Kind(), d.Parallel, d.Shards, d.Workers, d.Reason)
}

// Model thresholds. Work is measured in tuples touched: input rows plus
// output answers, the two linear terms of the Theorem 12 cost model.
const (
	// MinParallelWork is the smallest work (rows + answers) worth paying
	// the executor's fixed costs for — worker startup, batch channels, the
	// merge. Below it a sequential drain finishes before a pool warms up.
	MinParallelWork = 1 << 12 // 4096 tuples
	// MinShardAnswers is the smallest exact answer count for which
	// disjoint sharding — which pays one extra hash-partition pass over
	// the input — beats plain work stealing. The win is proportional to
	// the answers whose dedup probe it removes.
	MinShardAnswers = 1 << 14 // 16384 answers
	// MaxShardOutputShare is the largest estimated per-shard output share
	// tolerated before sharding is judged to concentrate the fan-out on
	// one shard and work stealing (which re-splits heavy tasks) is kept
	// instead. Expressed as a multiple of the perfectly balanced share.
	MaxShardOutputShare = 3.0
)

// Decide resolves the execution knobs for one bind. The returned decision
// always passes PlanOptions validation (Shards/Workers only with
// Parallel), which the property tests pin.
func Decide(in Inputs) Decision {
	d := decideMode(in)
	// Spill is an orthogonal overlay on the mode choice: when the exact
	// count already proves the answer set exceeds the memory budget, the
	// dedup set must go to disk — unless the chosen mode is the dedup-free
	// disjoint sharded merge, which never materialises the answer set. A
	// sequential pick is upgraded to the parallel merge, the only path that
	// carries the spillable dedup set; on one CPU it runs with one worker.
	if in.MemBudget > 0 && in.Answers > in.MemBudget && in.ConstantDelay &&
		!(d.Shards > 0 && in.ShardableDisjoint) {
		d.Spill = true
		if !d.Parallel {
			d.Parallel = true
			d.Workers = in.CPUs
			if d.Workers < 1 {
				d.Workers = 1
			}
			d.Reason = fmt.Sprintf("%d exact answers exceed the %d-answer memory budget: spilled dedup on the parallel merge", in.Answers, in.MemBudget)
		} else {
			d.Reason += fmt.Sprintf("; %d answers exceed the %d-answer budget, dedup spills to disk", in.Answers, in.MemBudget)
		}
	}
	return d
}

// decideMode picks the execution mode without regard to the memory budget.
func decideMode(in Inputs) Decision {
	d := Decision{Inputs: in}
	work := int64(in.Rows)
	if in.Answers > 0 {
		work += in.Answers
	}
	if in.CPUs <= 1 {
		d.Reason = "single CPU: parallel modes only add scheduling overhead"
		return d
	}
	if work < MinParallelWork {
		d.Reason = fmt.Sprintf("tiny instance (%d rows + answers < %d): executor startup would dominate", work, MinParallelWork)
		return d
	}
	d.Parallel = true
	d.Workers = in.CPUs
	if !in.ConstantDelay {
		// Naive mode: no exact counts to judge sharding by. Shard on input
		// volume alone — the sharded evaluator falls back per member CQ
		// when no safe attribute exists, so overcommitting is harmless.
		if in.Rows >= int(MinShardAnswers) {
			d.Shards = in.CPUs
			d.Reason = fmt.Sprintf("naive evaluation of %d rows: shard each member %d-way for join-level parallelism", in.Rows, d.Shards)
			return d
		}
		d.Reason = "naive evaluation: parallel member joins, input too small to shard"
		return d
	}
	if in.ShardableDisjoint && in.Answers >= MinShardAnswers &&
		in.OutputShare > 0 && in.OutputShare <= MaxShardOutputShare/float64(in.CPUs) {
		d.Shards = in.CPUs
		d.Reason = fmt.Sprintf("disjoint head-variable sharding with balanced output (max share %.2f): dedup-free merge of %d answers", in.OutputShare, in.Answers)
		return d
	}
	switch {
	case !in.ShardableDisjoint:
		d.Reason = "work-stealing parallel: no disjoint partition attribute, sharding would keep dedup on"
	case in.Answers < MinShardAnswers:
		d.Reason = fmt.Sprintf("work-stealing parallel: %d answers too few to repay a partition pass", in.Answers)
	default:
		d.Reason = fmt.Sprintf("work-stealing parallel: estimated output share %.2f too skewed to shard, re-splitting handles the heavy keys", in.OutputShare)
	}
	return d
}
