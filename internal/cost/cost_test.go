package cost

import (
	"math/rand"
	"testing"
)

// TestDecideAlwaysValid is the property the plan layer relies on: for any
// inputs — including nonsense ones — the resolved knobs satisfy
// PlanOptions validation (Shards and Workers are zero unless Parallel is
// set) and the provenance fields are populated.
func TestDecideAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for i := 0; i < 5000; i++ {
		in := Inputs{
			ConstantDelay:     rng.Intn(2) == 0,
			Rows:              rng.Intn(1 << 20),
			Answers:           rng.Int63n(1<<21) - 1, // includes -1 (unknown)
			Branches:          rng.Intn(5),
			CPUs:              rng.Intn(65) - 1, // includes -1 and 0
			ShardableDisjoint: rng.Intn(2) == 0,
			OutputShare:       rng.Float64() * 4,
			MemBudget:         rng.Int63n(1<<20) - 1, // includes -1 and 0 (unbounded)
		}
		d := Decide(in)
		if !d.Parallel && (d.Shards != 0 || d.Workers != 0) {
			t.Fatalf("case %d: invalid combination %+v from %+v", i, d, in)
		}
		if d.Spill && !d.Parallel {
			t.Fatalf("case %d: spill without the parallel merge %+v from %+v", i, d, in)
		}
		if d.Spill && d.Shards > 0 && in.ShardableDisjoint {
			t.Fatalf("case %d: spill on a dedup-free sharded merge %+v from %+v", i, d, in)
		}
		if d.Shards < 0 || d.Workers < 0 {
			t.Fatalf("case %d: negative knob %+v", i, d)
		}
		if d.Reason == "" {
			t.Fatalf("case %d: empty reason for %+v", i, in)
		}
		if d.Inputs != in {
			t.Fatalf("case %d: provenance inputs %+v do not echo %+v", i, d.Inputs, in)
		}
	}
}

// TestDecideDeterministic pins that Decide is a pure function of its
// inputs — the property that makes auto decisions cacheable per snapshot.
func TestDecideDeterministic(t *testing.T) {
	in := Inputs{ConstantDelay: true, Rows: 1 << 16, Answers: 1 << 16,
		Branches: 1, CPUs: 8, ShardableDisjoint: true, OutputShare: 0.13}
	a, b := Decide(in), Decide(in)
	if a != b {
		t.Fatalf("same inputs, different decisions:\n%+v\n%+v", a, b)
	}
}

// TestDecideRegimes pins one decision per regime of the model.
func TestDecideRegimes(t *testing.T) {
	cases := []struct {
		name string
		in   Inputs
		kind string
	}{
		{"single CPU", Inputs{ConstantDelay: true, Rows: 1 << 20, Answers: 1 << 20, CPUs: 1, ShardableDisjoint: true, OutputShare: 0.1}, "sequential"},
		{"tiny instance", Inputs{ConstantDelay: true, Rows: 100, Answers: 50, CPUs: 8}, "sequential"},
		{"balanced disjoint output", Inputs{ConstantDelay: true, Rows: 1 << 16, Answers: 1 << 16, CPUs: 8, ShardableDisjoint: true, OutputShare: 0.14}, "sharded"},
		{"skewed output", Inputs{ConstantDelay: true, Rows: 1 << 16, Answers: 1 << 16, CPUs: 8, ShardableDisjoint: true, OutputShare: 0.9}, "parallel"},
		{"no disjoint attribute", Inputs{ConstantDelay: true, Rows: 1 << 16, Answers: 1 << 16, CPUs: 8}, "parallel"},
		{"few answers", Inputs{ConstantDelay: true, Rows: 1 << 16, Answers: 100, CPUs: 8, ShardableDisjoint: true, OutputShare: 0.14}, "parallel"},
		{"naive big input", Inputs{ConstantDelay: false, Rows: 1 << 16, Answers: -1, CPUs: 8}, "sharded"},
		{"naive small input", Inputs{ConstantDelay: false, Rows: 1 << 13, Answers: -1, CPUs: 8}, "parallel"},
		{"naive tiny input", Inputs{ConstantDelay: false, Rows: 100, Answers: -1, CPUs: 8}, "sequential"},
	}
	for _, tc := range cases {
		d := Decide(tc.in)
		if d.Kind() != tc.kind {
			t.Errorf("%s: kind = %s (%s), want %s", tc.name, d.Kind(), d.Reason, tc.kind)
		}
	}
}

// TestDecideSpill pins the budget overlay: an exact count over the budget
// forces the spilled dedup path (even on one CPU, where the mode would
// otherwise be sequential), while the dedup-free sharded merge and naive
// mode (no exact count) are left alone.
func TestDecideSpill(t *testing.T) {
	base := Inputs{ConstantDelay: true, Rows: 1 << 16, Answers: 1 << 16, CPUs: 8, MemBudget: 1 << 10}
	if d := Decide(base); !d.Spill || !d.Parallel {
		t.Fatalf("over-budget parallel: %+v", d)
	}
	one := base
	one.CPUs = 1
	if d := Decide(one); !d.Spill || !d.Parallel || d.Workers != 1 {
		t.Fatalf("over-budget on one CPU must still reach the spillable merge: %+v", d)
	}
	under := base
	under.MemBudget = 1 << 20
	if d := Decide(under); d.Spill {
		t.Fatalf("under-budget answer set spilled: %+v", d)
	}
	sharded := base
	sharded.ShardableDisjoint = true
	sharded.OutputShare = 0.14
	if d := Decide(sharded); d.Kind() != "sharded" || d.Spill {
		t.Fatalf("dedup-free sharded merge has nothing to spill: %+v", d)
	}
	naive := base
	naive.ConstantDelay = false
	naive.Answers = -1
	if d := Decide(naive); d.Spill {
		t.Fatalf("naive mode has no exact count to spill on: %+v", d)
	}
}

// TestDecideScalesWithCPUs pins that the picked shard and worker counts
// track the machine: on a bigger box the same instance gets more of both.
func TestDecideScalesWithCPUs(t *testing.T) {
	in := Inputs{ConstantDelay: true, Rows: 1 << 18, Answers: 1 << 18,
		Branches: 1, ShardableDisjoint: true}
	for _, cpus := range []int{2, 4, 16} {
		in.CPUs = cpus
		// Perfectly balanced output keeps the sharding gate open at any
		// width: share exactly 1/cpus.
		in.OutputShare = 1.0 / float64(cpus)
		d := Decide(in)
		if d.Shards != cpus || d.Workers != cpus {
			t.Errorf("cpus=%d: shards=%d workers=%d, want both %d (%s)", cpus, d.Shards, d.Workers, cpus, d.Reason)
		}
	}
}
