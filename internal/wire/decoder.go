package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/database"
)

// Frame is one decoded frame. Kind selects which fields are meaningful:
// header frames carry Arity and Meta, block frames carry Tuples, marker
// frames carry RootDone, trailer frames carry Trailer. Tuples and Meta are
// freshly allocated per frame and safe to retain.
type Frame struct {
	Kind     Kind
	Arity    int
	Meta     json.RawMessage
	Tuples   []database.Tuple
	RootDone int
	Trailer  *Trailer
}

// Decoder reads a binary answer stream. Next returns frames in order,
// enforcing the format's structural rules: the first frame must be the
// header, exactly one header per stream, block widths must match the
// declared arity. A clean end-of-stream between frames is io.EOF; a
// truncated frame is io.ErrUnexpectedEOF; anything structurally wrong
// wraps ErrFormat. Decoders are not safe for concurrent use.
type Decoder struct {
	r          io.Reader
	arity      int
	headerSeen bool
	trailer    bool
	hdr        [frameHeaderLen]byte
	payload    []byte
	err        error
}

// NewDecoder returns a decoder reading from r. r should be buffered by the
// caller if reads are expensive; the decoder issues two reads per frame.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r}
}

// Arity returns the stream arity, valid once the header frame has been
// decoded (-1 before).
func (d *Decoder) Arity() int {
	if !d.headerSeen {
		return -1
	}
	return d.arity
}

// Next decodes and returns the next frame. After the trailer frame it
// returns io.EOF; it also returns io.EOF at a clean underlying EOF before
// the trailer, so callers distinguish complete from truncated streams by
// whether a trailer frame was seen.
func (d *Decoder) Next() (*Frame, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.trailer {
		d.err = io.EOF
		return nil, d.err
	}
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			d.err = io.EOF
		} else {
			d.err = io.ErrUnexpectedEOF
		}
		return nil, d.err
	}
	if got := binary.LittleEndian.Uint32(d.hdr[0:]); got != frameMagic {
		return nil, d.fail("bad magic 0x%08x", got)
	}
	kind := Kind(d.hdr[4])
	length := binary.LittleEndian.Uint32(d.hdr[5:])
	wantCRC := binary.LittleEndian.Uint32(d.hdr[9:])
	if length > MaxFramePayload {
		return nil, d.fail("frame payload %d exceeds limit", length)
	}
	if uint32(cap(d.payload)) < length {
		d.payload = make([]byte, length)
	}
	p := d.payload[:length]
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = io.ErrUnexpectedEOF
		return nil, d.err
	}
	if got := checksum(p); got != wantCRC {
		return nil, d.fail("payload checksum 0x%08x, want 0x%08x", got, wantCRC)
	}
	if kind != KindHeader && !d.headerSeen {
		return nil, d.fail("frame kind %d before header", kind)
	}
	switch kind {
	case KindHeader:
		return d.decodeHeader(p)
	case KindBlock:
		return d.decodeBlock(p)
	case KindMarker:
		return d.decodeMarker(p)
	case KindTrailer:
		return d.decodeTrailer(p)
	default:
		return nil, d.fail("unknown frame kind %d", kind)
	}
}

func (d *Decoder) fail(format string, args ...any) error {
	d.err = fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
	return d.err
}

func (d *Decoder) decodeHeader(p []byte) (*Frame, error) {
	if d.headerSeen {
		return nil, d.fail("duplicate header frame")
	}
	if len(p) < 3 {
		return nil, d.fail("header payload too short")
	}
	if p[0] != headerVersion {
		return nil, d.fail("unsupported format version %d", p[0])
	}
	arity := int(binary.LittleEndian.Uint16(p[1:]))
	if arity > MaxArity {
		return nil, d.fail("arity %d out of range", arity)
	}
	p = p[3:]
	if len(p) < arity+4 {
		return nil, d.fail("header payload too short for %d codecs", arity)
	}
	for i := 0; i < arity; i++ {
		if p[i] != codecDeltaVarint {
			return nil, d.fail("unknown column codec %d", p[i])
		}
	}
	p = p[arity:]
	metaLen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) != metaLen {
		return nil, d.fail("header meta length %d, have %d bytes", metaLen, len(p))
	}
	var meta json.RawMessage
	if metaLen > 0 {
		meta = append(json.RawMessage(nil), p...)
	}
	d.headerSeen = true
	d.arity = arity
	return &Frame{Kind: KindHeader, Arity: arity, Meta: meta}, nil
}

func (d *Decoder) decodeBlock(p []byte) (*Frame, error) {
	rows64, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, d.fail("bad block row count")
	}
	p = p[n:]
	if rows64 == 0 || rows64 > MaxBlockRows {
		return nil, d.fail("block row count %d out of range", rows64)
	}
	rows := int(rows64)
	// One backing array for the whole block keeps the decode to two
	// allocations regardless of row count.
	flat := make([]database.Value, rows*d.arity)
	for c := 0; c < d.arity; c++ {
		prev := int64(0)
		for r := 0; r < rows; r++ {
			u, n := binary.Uvarint(p)
			if n <= 0 {
				return nil, d.fail("truncated column %d at row %d", c, r)
			}
			p = p[n:]
			prev += unzigzag(u)
			flat[r*d.arity+c] = database.Value(prev)
		}
	}
	if len(p) != 0 {
		return nil, d.fail("%d trailing bytes in block payload", len(p))
	}
	tuples := make([]database.Tuple, rows)
	for r := 0; r < rows; r++ {
		tuples[r] = database.Tuple(flat[r*d.arity : (r+1)*d.arity : (r+1)*d.arity])
	}
	return &Frame{Kind: KindBlock, Arity: d.arity, Tuples: tuples}, nil
}

func (d *Decoder) decodeMarker(p []byte) (*Frame, error) {
	u, n := binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return nil, d.fail("bad marker payload")
	}
	if u > uint64(int(^uint(0)>>1)) {
		return nil, d.fail("marker root_done %d out of range", u)
	}
	return &Frame{Kind: KindMarker, Arity: d.arity, RootDone: int(u)}, nil
}

func (d *Decoder) decodeTrailer(p []byte) (*Frame, error) {
	var tr Trailer
	if err := json.Unmarshal(p, &tr); err != nil {
		return nil, d.fail("bad trailer JSON: %v", err)
	}
	d.trailer = true
	return &Frame{Kind: KindTrailer, Arity: d.arity, Trailer: &tr}, nil
}

// SawTrailer reports whether the stream ended with a trailer frame — the
// binary protocol's completeness signal, mirroring the NDJSON trailer
// object.
func (d *Decoder) SawTrailer() bool { return d.trailer }
