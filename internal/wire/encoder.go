package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/database"
)

// Encoder writes a binary answer stream to w. The header frame is written
// lazily before the first payload frame, so metadata can be attached after
// construction; Append buffers tuples column-wise and FlushBlock turns the
// buffer into one block frame. Callers flush at the same cadence as the
// NDJSON path (FlushEvery boundaries); the encoder itself only forces a
// block at MaxBlockRows. Encoders are not safe for concurrent use.
type Encoder struct {
	w     io.Writer
	arity int
	meta  []byte

	headerDone bool
	cols       [][]int64
	rows       int
	frame      []byte
	payload    []byte
	err        error
}

// NewEncoder returns an encoder for tuples of the given arity.
func NewEncoder(w io.Writer, arity int) (*Encoder, error) {
	if arity < 0 || arity > MaxArity {
		return nil, fmt.Errorf("wire: arity %d out of range", arity)
	}
	cols := make([][]int64, arity)
	return &Encoder{w: w, arity: arity, cols: cols}, nil
}

// SetMeta attaches a JSON-marshalled metadata object to the header frame —
// the scatter hop rides its ScatterHeader here. It must be called before
// the first Append/Marker/Trailer; afterwards the header is on the wire.
func (e *Encoder) SetMeta(v any) error {
	if e.err != nil {
		return e.err
	}
	if e.headerDone {
		return fmt.Errorf("wire: SetMeta after header already written")
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal header meta: %w", err)
	}
	e.meta = b
	return nil
}

// writeHeader emits the header frame once.
func (e *Encoder) writeHeader() error {
	if e.headerDone {
		return nil
	}
	p := e.payload[:0]
	p = append(p, headerVersion)
	p = binary.LittleEndian.AppendUint16(p, uint16(e.arity))
	for i := 0; i < e.arity; i++ {
		p = append(p, codecDeltaVarint)
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(len(e.meta)))
	p = append(p, e.meta...)
	e.payload = p
	e.headerDone = true
	return e.writeFrame(KindHeader, p)
}

// writeFrame frames and writes one payload, latching the first error.
func (e *Encoder) writeFrame(kind Kind, payload []byte) error {
	e.frame = appendFrame(e.frame[:0], kind, payload)
	if _, err := e.w.Write(e.frame); err != nil {
		e.err = err
		return err
	}
	return nil
}

// WriteHeader forces the header frame onto the wire immediately. Useful
// when the stream's consumer needs the header metadata before the first
// block — the scatter protocol's probe/scatterable handshake reads it
// before any answers exist. A no-op once the header is out.
func (e *Encoder) WriteHeader() error {
	if e.err != nil {
		return e.err
	}
	return e.writeHeader()
}

// Append buffers one answer tuple. The tuple must match the encoder's
// arity; it is copied, so callers may reuse the slice.
func (e *Encoder) Append(t database.Tuple) error {
	if e.err != nil {
		return e.err
	}
	if len(t) != e.arity {
		return fmt.Errorf("wire: tuple arity %d, encoder arity %d", len(t), e.arity)
	}
	for i, v := range t {
		e.cols[i] = append(e.cols[i], int64(v))
	}
	e.rows++
	if e.rows >= MaxBlockRows {
		return e.FlushBlock()
	}
	return nil
}

// FlushBlock writes the buffered tuples as one block frame; it is a no-op
// with nothing buffered. Deltas reset at block boundaries, so any block is
// decodable without its predecessors.
func (e *Encoder) FlushBlock() error {
	if e.err != nil {
		return e.err
	}
	if e.rows == 0 {
		return nil
	}
	if err := e.writeHeader(); err != nil {
		return err
	}
	p := e.payload[:0]
	p = binary.AppendUvarint(p, uint64(e.rows))
	for c := 0; c < e.arity; c++ {
		prev := int64(0)
		for _, v := range e.cols[c] {
			p = binary.AppendUvarint(p, zigzag(v-prev))
			prev = v
		}
		e.cols[c] = e.cols[c][:0]
	}
	e.payload = p
	e.rows = 0
	return e.writeFrame(KindBlock, p)
}

// Marker flushes any buffered block and writes a marker frame carrying the
// scatter protocol's root_done checkpoint.
func (e *Encoder) Marker(rootDone int) error {
	if err := e.FlushBlock(); err != nil {
		return err
	}
	if err := e.writeHeader(); err != nil {
		return err
	}
	if rootDone < 0 {
		return fmt.Errorf("wire: negative marker root_done %d", rootDone)
	}
	p := binary.AppendUvarint(e.payload[:0], uint64(rootDone))
	e.payload = p
	return e.writeFrame(KindMarker, p)
}

// Trailer flushes any buffered block and ends the stream with a trailer
// frame. The encoder is still usable only for error returns afterwards;
// callers write exactly one trailer.
func (e *Encoder) Trailer(tr Trailer) error {
	if err := e.FlushBlock(); err != nil {
		return err
	}
	if err := e.writeHeader(); err != nil {
		return err
	}
	b, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("wire: marshal trailer: %w", err)
	}
	return e.writeFrame(KindTrailer, b)
}

// Buffered reports how many appended tuples have not yet been framed.
func (e *Encoder) Buffered() int { return e.rows }
