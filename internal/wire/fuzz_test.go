package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/database"
)

// FuzzAnswerFrame throws arbitrary bytes at the frame decoder. The
// invariants: no panic, no unbounded allocation (the decoder enforces
// MaxFramePayload/MaxBlockRows before allocating), errors are one of
// io.EOF / io.ErrUnexpectedEOF / ErrFormat-wrapped, and any stream the
// decoder fully accepts must re-encode to a stream that decodes to the
// same tuples, markers and trailer.
func FuzzAnswerFrame(f *testing.F) {
	seed := func(build func(e *Encoder)) []byte {
		var buf bytes.Buffer
		e, err := NewEncoder(&buf, 2)
		if err != nil {
			f.Fatal(err)
		}
		build(e)
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed(func(e *Encoder) {
		e.Trailer(Trailer{Done: true})
	}))
	f.Add(seed(func(e *Encoder) {
		e.Append(database.Tuple{database.V(1), database.V(-2)})
		e.Append(database.Tuple{database.TaggedValue(3, 9), database.V(database.MaxPayload)})
		e.Marker(5)
		e.Append(database.Tuple{database.V(7), database.V(7)})
		e.Trailer(Trailer{Done: true, Count: 3, Mode: "auto", RootDone: 9})
	}))
	f.Add(seed(func(e *Encoder) {
		e.SetMeta(map[string]any{"root_len": 3, "mode": "cdy"})
		e.Append(database.Tuple{database.V(0), database.V(0)})
		e.FlushBlock()
		e.Trailer(Trailer{Done: false, Error: "spill: disk full", Count: 1})
	}))
	f.Add(appendFrame(nil, KindHeader, []byte{headerVersion, 0, 0, 0, 0, 0, 0}))
	f.Add(appendFrame(nil, KindBlock, []byte{1, 2, 3}))
	f.Add([]byte{0x46, 0x51, 0x43, 0x55, 0x02, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		var tuples []database.Tuple
		var markers []int
		var trailer *Trailer
		arity := -1
		clean := false
		for i := 0; i < 1<<12; i++ {
			fr, err := d.Next()
			if err == io.EOF {
				clean = d.SawTrailer()
				break
			}
			if err != nil {
				if err != io.ErrUnexpectedEOF && !errors.Is(err, ErrFormat) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			switch fr.Kind {
			case KindHeader:
				arity = fr.Arity
			case KindBlock:
				tuples = append(tuples, fr.Tuples...)
				for _, tp := range fr.Tuples {
					if len(tp) != arity {
						t.Fatalf("block tuple arity %d, header %d", len(tp), arity)
					}
				}
			case KindMarker:
				markers = append(markers, fr.RootDone)
			case KindTrailer:
				trailer = fr.Trailer
			}
		}
		if !clean || trailer == nil {
			return
		}
		// Accepted stream: re-encode and check the round trip.
		var buf bytes.Buffer
		e, err := NewEncoder(&buf, arity)
		if err != nil {
			t.Fatalf("re-encode NewEncoder(%d): %v", arity, err)
		}
		for _, tp := range tuples {
			if err := e.Append(tp); err != nil {
				t.Fatalf("re-encode Append: %v", err)
			}
		}
		for _, m := range markers {
			if err := e.Marker(m); err != nil {
				t.Fatalf("re-encode Marker: %v", err)
			}
		}
		if err := e.Trailer(*trailer); err != nil {
			t.Fatalf("re-encode Trailer: %v", err)
		}
		d2 := NewDecoder(bytes.NewReader(buf.Bytes()))
		var tuples2 []database.Tuple
		var trailer2 *Trailer
		for {
			fr, err := d2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if fr.Kind == KindBlock {
				tuples2 = append(tuples2, fr.Tuples...)
			}
			if fr.Kind == KindTrailer {
				trailer2 = fr.Trailer
			}
		}
		if len(tuples2) != len(tuples) {
			t.Fatalf("re-decode %d tuples, want %d", len(tuples2), len(tuples))
		}
		for i := range tuples {
			for j := range tuples[i] {
				if tuples2[i][j] != tuples[i][j] {
					t.Fatalf("re-decode tuple %d[%d] = %v, want %v", i, j, tuples2[i][j], tuples[i][j])
				}
			}
		}
		if trailer2 == nil || *trailer2 != *trailer {
			t.Fatalf("re-decode trailer %+v, want %+v", trailer2, trailer)
		}
	})
}
