package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/database"
)

// collect decodes a whole stream, returning tuples, markers and trailer.
func collect(t *testing.T, b []byte) ([]database.Tuple, []int, *Trailer, json.RawMessage) {
	t.Helper()
	d := NewDecoder(bytes.NewReader(b))
	var tuples []database.Tuple
	var markers []int
	var tr *Trailer
	var meta json.RawMessage
	for {
		f, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		switch f.Kind {
		case KindHeader:
			meta = f.Meta
		case KindBlock:
			tuples = append(tuples, f.Tuples...)
		case KindMarker:
			markers = append(markers, f.RootDone)
		case KindTrailer:
			tr = f.Trailer
		}
	}
	return tuples, markers, tr, meta
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetMeta(map[string]int{"root_len": 7}); err != nil {
		t.Fatal(err)
	}
	want := []database.Tuple{
		{database.V(1), database.V(2), database.V(3)},
		{database.V(1), database.V(5), database.V(-9)},
		{database.TaggedValue(42, 7), database.V(database.MaxPayload), database.V(database.MinPayload)},
	}
	for i, tp := range want {
		if err := e.Append(tp); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := e.Marker(4); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Trailer(Trailer{Done: true, Count: 3, Mode: "auto"}); err != nil {
		t.Fatal(err)
	}

	tuples, markers, tr, meta := collect(t, buf.Bytes())
	if len(tuples) != len(want) {
		t.Fatalf("decoded %d tuples, want %d", len(tuples), len(want))
	}
	for i := range want {
		if len(tuples[i]) != len(want[i]) {
			t.Fatalf("tuple %d arity %d, want %d", i, len(tuples[i]), len(want[i]))
		}
		for j := range want[i] {
			if tuples[i][j] != want[i][j] {
				t.Fatalf("tuple %d[%d] = %v, want %v", i, j, tuples[i][j], want[i][j])
			}
		}
	}
	if len(markers) != 1 || markers[0] != 4 {
		t.Fatalf("markers = %v, want [4]", markers)
	}
	if tr == nil || !tr.Done || tr.Count != 3 || tr.Mode != "auto" {
		t.Fatalf("trailer = %+v", tr)
	}
	var m struct {
		RootLen int `json:"root_len"`
	}
	if err := json.Unmarshal(meta, &m); err != nil || m.RootLen != 7 {
		t.Fatalf("meta = %s (err %v)", meta, err)
	}
}

func TestRoundTripArityZero(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append(database.Tuple{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Trailer(Trailer{Done: true, Count: 1}); err != nil {
		t.Fatal(err)
	}
	tuples, _, tr, _ := collect(t, buf.Bytes())
	if len(tuples) != 1 || len(tuples[0]) != 0 {
		t.Fatalf("tuples = %v, want one empty tuple", tuples)
	}
	if tr == nil || !tr.Done || tr.Count != 1 {
		t.Fatalf("trailer = %+v", tr)
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Trailer(Trailer{Done: true}); err != nil {
		t.Fatal(err)
	}
	tuples, markers, tr, _ := collect(t, buf.Bytes())
	if len(tuples) != 0 || len(markers) != 0 {
		t.Fatalf("tuples=%v markers=%v, want none", tuples, markers)
	}
	if tr == nil || !tr.Done {
		t.Fatalf("trailer = %+v", tr)
	}
}

func TestRoundTripManyBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want []database.Tuple
	for i := 0; i < 5000; i++ {
		tp := database.Tuple{
			database.TaggedValue(rng.Int63n(1<<40)-(1<<39), uint8(rng.Intn(4))),
			database.V(rng.Int63n(1000)),
		}
		want = append(want, tp)
		if err := e.Append(tp); err != nil {
			t.Fatal(err)
		}
		if i%257 == 0 {
			if err := e.FlushBlock(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Trailer(Trailer{Done: true, Count: len(want)}); err != nil {
		t.Fatal(err)
	}
	tuples, _, tr, _ := collect(t, buf.Bytes())
	if len(tuples) != len(want) {
		t.Fatalf("decoded %d tuples, want %d", len(tuples), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if tuples[i][j] != want[i][j] {
				t.Fatalf("tuple %d[%d] = %v, want %v", i, j, tuples[i][j], want[i][j])
			}
		}
	}
	if tr == nil || tr.Count != len(want) {
		t.Fatalf("trailer = %+v", tr)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, 1)
	for i := 0; i < 10; i++ {
		e.Append(database.Tuple{database.V(int64(i))})
	}
	e.FlushBlock()
	e.Trailer(Trailer{Done: true, Count: 10})
	full := buf.Bytes()

	for cut := 1; cut < len(full); cut++ {
		d := NewDecoder(bytes.NewReader(full[:len(full)-cut]))
		sawTrailer := false
		for {
			f, err := d.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("cut %d: unexpected error %v", cut, err)
				}
				break
			}
			if f.Kind == KindTrailer {
				sawTrailer = true
			}
		}
		if sawTrailer || d.SawTrailer() {
			t.Fatalf("cut %d: truncated stream reported a trailer", cut)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, 2)
	e.Append(database.Tuple{database.V(1), database.V(2)})
	e.Trailer(Trailer{Done: true, Count: 1})
	full := buf.Bytes()

	for i := range full {
		b := append([]byte(nil), full...)
		b[i] ^= 0x41
		d := NewDecoder(bytes.NewReader(b))
		for {
			_, err := d.Next()
			if err != nil {
				break
			}
		}
	}
	// A flipped bit inside a payload must surface as ErrFormat (checksum).
	b := append([]byte(nil), full...)
	b[frameHeaderLen] ^= 1 // first header payload byte
	d := NewDecoder(bytes.NewReader(b))
	_, err := d.Next()
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("corrupt payload: err = %v, want ErrFormat", err)
	}
}

func TestStructuralRules(t *testing.T) {
	// Block before header.
	raw := appendFrame(nil, KindBlock, []byte{1, 2})
	d := NewDecoder(bytes.NewReader(raw))
	if _, err := d.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("block before header: %v, want ErrFormat", err)
	}

	// Duplicate header: concatenating two streams must fail at the second
	// header frame.
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, 1)
	e.Append(database.Tuple{database.V(1)})
	e.FlushBlock()
	doubled := append(append([]byte(nil), buf.Bytes()...), buf.Bytes()...)
	d = NewDecoder(bytes.NewReader(doubled))
	var err error
	for err == nil {
		_, err = d.Next()
	}
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("duplicate header: %v, want ErrFormat", err)
	}

	// Unknown kind.
	raw = appendFrame(nil, Kind(9), nil)
	d = NewDecoder(bytes.NewReader(raw))
	if _, err := d.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("unknown kind: %v, want ErrFormat", err)
	}
}

func TestNDJSONTupleRoundTrip(t *testing.T) {
	cases := []database.Tuple{
		{},
		{database.V(0)},
		{database.V(-5), database.V(7)},
		{database.TaggedValue(13, 2), database.V(database.MaxPayload)},
		{database.V(database.MinPayload), database.TaggedValue(-1, 255)},
	}
	for _, tp := range cases {
		line := AppendTupleNDJSON(nil, tp)
		got, err := ParseTupleNDJSON(line)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		if len(got) != len(tp) {
			t.Fatalf("parse %s: arity %d, want %d", line, len(got), len(tp))
		}
		for i := range tp {
			if got[i] != tp[i] {
				t.Fatalf("parse %s: [%d] = %v, want %v", line, i, got[i], tp[i])
			}
		}
		// With trailing newline too, as read off the stream.
		if _, err := ParseTupleNDJSON(append(line, '\n')); err != nil {
			t.Fatalf("parse with newline %s: %v", line, err)
		}
	}
}

func TestNDJSONTupleRejects(t *testing.T) {
	bad := []string{
		"", "{", "[1", "[1,]", "[,1]", "[1 2]", "[1]x", `["1#0"]`, `["1#256"]`,
		`["1"]`, `["#1"]`, "[99999999999999999999]", "[1.5]", `[true]`,
		`["72057594037927936#1"]`, // payload > MaxPayload
	}
	for _, s := range bad {
		if _, err := ParseTupleNDJSON([]byte(s)); err == nil {
			t.Fatalf("ParseTupleNDJSON(%q) accepted", s)
		}
	}
}

func TestEncoderArityMismatch(t *testing.T) {
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, 2)
	if err := e.Append(database.Tuple{database.V(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
