// Package wire is the compact binary answer encoding of the streaming
// server: a columnar frame format negotiated per request via the Accept
// header, replacing per-row NDJSON text on the paths that move answers in
// bulk (client streams that ask for it, and the coordinator→worker scatter
// hop, where it is the default).
//
// A stream is a sequence of frames, each length-prefixed and checksummed
// like the storage layer's WAL records:
//
//	magic   u32  frameMagic ("UCQF")
//	kind    u8   header | block | marker | trailer
//	length  u32  payload bytes (≤ MaxFramePayload)
//	crc     u32  CRC-32 (IEEE) of the payload
//	payload length bytes
//
// All fixed-width integers are little-endian. The first frame is always a
// header (arity, per-column codec, optional JSON stream metadata); answers
// travel in block frames holding up to MaxBlockRows tuples transposed into
// columns, each column a run of zigzag-varint deltas of the raw 64-bit
// value words — root-ordered enumeration makes the leading column nearly
// sorted, so deltas stay in the one-byte varint range. Marker frames carry
// the scatter protocol's root_done checkpoints, and an explicit trailer
// frame ends the stream with the same fields the NDJSON trailer object
// carries. A decoder can therefore distinguish "complete" from "truncated"
// exactly as on the text protocol: no trailer frame, no complete stream.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/database"
)

// Media types the server negotiates between. NDJSON is the default and the
// fallback for any Accept header that doesn't name the binary encoding.
const (
	// MediaTypeNDJSON is the text answer stream: one JSON array per
	// answer, one JSON object trailer.
	MediaTypeNDJSON = "application/x-ndjson"
	// MediaTypeBinary is this package's columnar frame stream.
	MediaTypeBinary = "application/x-ucq-bin"
)

// Kind is a frame type tag.
type Kind uint8

// Frame kinds.
const (
	KindHeader  Kind = 1
	KindBlock   Kind = 2
	KindMarker  Kind = 3
	KindTrailer Kind = 4
)

const (
	frameMagic     = 0x55435146 // "UCQF" little-endian
	frameHeaderLen = 13
	// MaxFramePayload bounds one frame's payload; a larger length field is
	// corruption, not a request for a 4 GiB allocation.
	MaxFramePayload = 1 << 26
	// MaxBlockRows caps the tuples per block frame. Encoders flush earlier
	// at the server's FlushEvery boundaries; this is the backstop that
	// keeps decoder allocations bounded.
	MaxBlockRows = 1 << 16
	// MaxArity bounds the header's declared tuple width.
	MaxArity = 1 << 12
	// codecDeltaVarint is the only column codec today: zigzag varints of
	// per-column deltas of the raw value words. The header carries one
	// codec byte per column so the format can grow dictionary or
	// run-length columns without a frame-level version bump.
	codecDeltaVarint = 0
	// headerVersion is the format version in the header frame.
	headerVersion = 1
)

// ErrFormat reports a structurally invalid frame or payload. Streams are
// either read to a trailer frame or failed with it — there is no partial
// recovery inside a corrupt stream.
var ErrFormat = errors.New("wire: malformed frame")

// Trailer is the payload of a trailer frame: the same completion record
// the NDJSON protocol sends as its final JSON object line, carried as a
// CRC-protected JSON payload so the field set can grow without a format
// bump. Done=false with a non-empty Error marks a stream that failed
// mid-enumeration; RootDone is used on the scatter hop, where the trailer
// doubles as the final progress marker.
type Trailer struct {
	Done           bool   `json:"done"`
	Count          int    `json:"count"`
	Mode           string `json:"mode,omitempty"`
	Cache          string `json:"cache,omitempty"`
	Dataset        string `json:"dataset,omitempty"`
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	Bind           string `json:"bind,omitempty"`
	Scatter        string `json:"scatter,omitempty"`
	Workers        int    `json:"workers,omitempty"`
	RootDone       int    `json:"root_done,omitempty"`
	Error          string `json:"error,omitempty"`
}

// checksum is the frame payload checksum — CRC-32 (IEEE), same as the WAL
// records.
func checksum(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// appendFrame appends one framed payload to dst.
func appendFrame(dst []byte, kind Kind, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:], checksum(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// zigzag maps a signed delta onto the unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendTupleNDJSON appends the tuple rendered as a JSON array to dst and
// returns the extended slice — the per-answer codec of the NDJSON stream,
// allocation-free once dst has capacity. Untagged values render as
// numbers; tagged values as "payload#tag" strings. ParseTupleNDJSON is its
// exact inverse.
func AppendTupleNDJSON(dst []byte, t database.Tuple) []byte {
	dst = append(dst, '[')
	for i, v := range t {
		if i > 0 {
			dst = append(dst, ',')
		}
		if v.Tag() == 0 {
			dst = appendInt(dst, v.Payload())
		} else {
			dst = append(dst, '"')
			dst = appendInt(dst, v.Payload())
			dst = append(dst, '#')
			dst = appendInt(dst, int64(v.Tag()))
			dst = append(dst, '"')
		}
	}
	return append(dst, ']')
}

// appendInt is strconv.AppendInt(dst, v, 10) without the import knot.
func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return appendUint(dst, uint64(-v))
	}
	return appendUint(dst, uint64(v))
}

func appendUint(dst []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

// ParseTupleNDJSON parses one NDJSON answer line — a JSON array as emitted
// by AppendTupleNDJSON, with or without the trailing newline — into a
// Tuple. It accepts exactly the stream's own output grammar: integers and
// "payload#tag" strings, no nesting, no floats.
func ParseTupleNDJSON(line []byte) (database.Tuple, error) {
	i, n := 0, len(line)
	skip := func() {
		for i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r' || line[i] == '\n') {
			i++
		}
	}
	skip()
	if i >= n || line[i] != '[' {
		return nil, fmt.Errorf("wire: answer line is not a JSON array")
	}
	i++
	var t database.Tuple
	skip()
	if i < n && line[i] == ']' {
		i++
		skip()
		if i != n {
			return nil, fmt.Errorf("wire: trailing bytes after answer array")
		}
		return t, nil
	}
	for {
		skip()
		if i >= n {
			return nil, fmt.Errorf("wire: unterminated answer array")
		}
		var v database.Value
		if line[i] == '"' {
			i++
			payload, err := parseIntUntil(line, &i, '#')
			if err != nil {
				return nil, err
			}
			i++ // '#'
			tag, err := parseIntUntil(line, &i, '"')
			if err != nil {
				return nil, err
			}
			i++ // '"'
			if tag < 1 || tag > 255 {
				return nil, fmt.Errorf("wire: tag %d out of range", tag)
			}
			if payload > database.MaxPayload || payload < database.MinPayload {
				return nil, fmt.Errorf("wire: payload %d out of range", payload)
			}
			v = database.TaggedValue(payload, uint8(tag))
		} else {
			payload, err := parseIntBare(line, &i)
			if err != nil {
				return nil, err
			}
			if payload > database.MaxPayload || payload < database.MinPayload {
				return nil, fmt.Errorf("wire: payload %d out of range", payload)
			}
			v = database.V(payload)
		}
		t = append(t, v)
		skip()
		if i >= n {
			return nil, fmt.Errorf("wire: unterminated answer array")
		}
		switch line[i] {
		case ',':
			i++
		case ']':
			i++
			skip()
			if i != n {
				return nil, fmt.Errorf("wire: trailing bytes after answer array")
			}
			return t, nil
		default:
			return nil, fmt.Errorf("wire: unexpected byte %q in answer array", line[i])
		}
	}
}

// parseIntUntil parses a decimal integer from line[*i:] up to (not
// consuming past) the terminator at line[*i] on return.
func parseIntUntil(line []byte, i *int, term byte) (int64, error) {
	v, err := parseIntBare(line, i)
	if err != nil {
		return 0, err
	}
	if *i >= len(line) || line[*i] != term {
		return 0, fmt.Errorf("wire: expected %q in answer value", term)
	}
	return v, nil
}

// parseIntBare parses a decimal integer (with optional leading '-')
// starting at line[*i], advancing *i past it.
func parseIntBare(line []byte, i *int) (int64, error) {
	n := len(line)
	neg := false
	if *i < n && line[*i] == '-' {
		neg = true
		*i++
	}
	start := *i
	var v uint64
	for *i < n && line[*i] >= '0' && line[*i] <= '9' {
		d := uint64(line[*i] - '0')
		if v > (1<<63-1)/10 {
			return 0, fmt.Errorf("wire: integer overflow in answer value")
		}
		v = v*10 + d
		*i++
	}
	if *i == start {
		return 0, fmt.Errorf("wire: expected integer in answer value")
	}
	if neg {
		if v > 1<<63 {
			return 0, fmt.Errorf("wire: integer overflow in answer value")
		}
		return -int64(v), nil
	}
	if v > 1<<63-1 {
		return 0, fmt.Errorf("wire: integer overflow in answer value")
	}
	return int64(v), nil
}
