// Package ucq is a library for evaluating and classifying Unions of
// Conjunctive Queries (UCQs) with constant-delay enumeration, implementing
// Carmeli & Kröll, "On the Enumeration Complexity of Unions of Conjunctive
// Queries" (PODS 2019).
//
// # What it does
//
//   - Parse CQs and UCQs from a datalog-style syntax.
//   - Classify a query's enumeration complexity with respect to DelayClin
//     (linear preprocessing, constant delay): tractable with an executable
//     free-connexity certificate (Theorems 4 and 12), intractable with the
//     paper's conditional lower bounds (Lemmas 14/15, Theorems 17/29/33),
//     or honestly Unknown where the paper leaves the problem open.
//   - Evaluate queries: certified free-connex UCQs run with linear
//     preprocessing and constant delay through union extensions, provider
//     enumeration (Lemma 8) and the Cheater's Lemma combinator (Lemma 5);
//     everything else falls back to a naive join with no delay guarantee.
//
// # Quick start
//
//	q := ucq.MustParse(`
//	    Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
//	    Q2(x,y,w) <- R1(x,y), R2(y,w).
//	`)
//	res, _ := ucq.Classify(q)          // tractable (Theorem 12)
//	plan, _ := ucq.NewPlan(q, inst, nil)
//	it := plan.Iterator()
//	for t, ok := it.Next(); ok; t, ok = it.Next() { use(t) }
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the reproduction of the paper's results.
package ucq

import (
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
)

// Core query and data types, re-exported from the internal packages.
type (
	// UCQ is a union of conjunctive queries with positional head semantics.
	UCQ = cq.UCQ
	// CQ is a single conjunctive query.
	CQ = cq.CQ
	// Atom is a relational atom of a query body.
	Atom = cq.Atom
	// Variable is a query variable.
	Variable = cq.Variable
	// VarSet is a set of variables.
	VarSet = cq.VarSet
	// RelDecl is a relation name with its arity.
	RelDecl = cq.RelDecl

	// Instance is an in-memory database instance.
	Instance = database.Instance
	// Relation is a table of tuples.
	Relation = database.Relation
	// Tuple is a row of values.
	Tuple = database.Tuple
	// Value is a database constant (56-bit payload plus 8-bit tag).
	Value = database.Value

	// Answers is a stream of answer tuples.
	Answers = enumeration.Iterator

	// Result is a classification outcome.
	Result = classify.Result
	// Verdict is the classification verdict.
	Verdict = classify.Verdict
	// CQClass is the Theorem 3 trichotomy for single CQs.
	CQClass = classify.CQClass
	// Certificate is an executable free-connexity witness.
	Certificate = core.Certificate
	// SearchOptions bounds the certificate search.
	SearchOptions = core.SearchOptions
	// ClassifyOptions tunes classification.
	ClassifyOptions = classify.Options
)

// Verdicts.
const (
	Tractable   = classify.Tractable
	Intractable = classify.Intractable
	Unknown     = classify.Unknown
)

// CQ classes (Theorem 3).
const (
	FreeConnex           = classify.FreeConnex
	AcyclicNotFreeConnex = classify.AcyclicNotFreeConnex
	Cyclic               = classify.Cyclic
)

// Parse reads a UCQ in datalog-style syntax:
//
//	Q1(x,y) <- R(x,z), S(z,y).
//	Q2(x,y) <- R(x,y), T(y).
//
// `:-` is accepted for `<-`, trailing periods are optional, and `#`, `//`
// and `%` start line comments.
func Parse(src string) (*UCQ, error) { return cq.Parse(src) }

// ParseCQ parses a single conjunctive query.
func ParseCQ(src string) (*CQ, error) { return cq.ParseCQ(src) }

// MustParse is Parse panicking on error.
func MustParse(src string) *UCQ { return cq.MustParse(src) }

// MustParseCQ is ParseCQ panicking on error.
func MustParseCQ(src string) *CQ { return cq.MustParseCQ(src) }

// NewVarSet builds a variable set.
func NewVarSet(vs ...Variable) VarSet { return cq.NewVarSet(vs...) }

// NewInstance creates an empty database instance.
func NewInstance() *Instance { return database.NewInstance() }

// NewRelation creates an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation { return database.NewRelation(name, arity) }

// V builds an untagged value.
func V(payload int64) Value { return database.V(payload) }

// TaggedValue builds a tagged value (used by the lower-bound encodings).
func TaggedValue(payload int64, tag uint8) Value { return database.TaggedValue(payload, tag) }

// Classify determines the enumeration complexity of the union with respect
// to DelayClin, per the paper's upper and lower bounds.
func Classify(u *UCQ) (*Result, error) { return classify.ClassifyUCQ(u, nil) }

// ClassifyWith is Classify with explicit options.
func ClassifyWith(u *UCQ, opts *ClassifyOptions) (*Result, error) {
	return classify.ClassifyUCQ(u, opts)
}

// ClassifyCQ computes the structural class of a single CQ (Theorem 3).
func ClassifyCQ(q *CQ) CQClass { return classify.ClassifyCQ(q) }

// FindCertificate searches for a free-connexity certificate (Definition 11)
// for the union. Pass nil options for the defaults.
func FindCertificate(u *UCQ, opts *SearchOptions) (*Certificate, bool) {
	return core.FindCertificate(u, opts)
}
