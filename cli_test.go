package ucq

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLISmoke builds and exercises the command-line tools end to end.
// Skipped in -short mode (it shells out to the Go toolchain).
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test shells out to go run")
	}
	dir := t.TempDir()

	queryPath := filepath.Join(dir, "query.ucq")
	if err := os.WriteFile(queryPath, []byte(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string]string{
		"R1": "1,2\n4,2\n",
		"R2": "2,3\n",
		"R3": "3,5\n3,6\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(rows), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// ucq-classify reports a tractable verdict with a certificate.
	out, err := exec.Command("go", "run", "./cmd/ucq-classify", "-v", queryPath).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-classify: %v\n%s", err, out)
	}
	for _, want := range []string{"verdict: tractable", "Theorem 12", "certificate"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("ucq-classify output missing %q:\n%s", want, out)
		}
	}

	// ucq-classify exits 1 on intractable queries.
	cmd := exec.Command("go", "run", "./cmd/ucq-classify")
	cmd.Stdin = strings.NewReader("Q(x,y) <- R(x,z), S(z,y).")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Errorf("ucq-classify should exit non-zero on intractable queries:\n%s", out)
	}
	if !strings.Contains(string(out), "verdict: intractable") {
		t.Errorf("ucq-classify output missing intractable verdict:\n%s", out)
	}

	// ucq-run streams the union's answers.
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-r", "R1="+filepath.Join(dir, "R1.csv"),
		"-r", "R2="+filepath.Join(dir, "R2.csv"),
		"-r", "R3="+filepath.Join(dir, "R3.csv"),
		"-count",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "constant-delay evaluation") {
		t.Errorf("ucq-run did not use the constant-delay engine:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[len(lines)-1] != "6" {
		t.Errorf("ucq-run count = %q, want 6\n%s", lines[len(lines)-1], out)
	}

	// -parallel mode counts the same answer set.
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-r", "R1="+filepath.Join(dir, "R1.csv"),
		"-r", "R2="+filepath.Join(dir, "R2.csv"),
		"-r", "R3="+filepath.Join(dir, "R3.csv"),
		"-count", "-parallel", "-batch", "2",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run -parallel: %v\n%s", err, out)
	}
	lines = strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[len(lines)-1] != "6" {
		t.Errorf("ucq-run -parallel count = %q, want 6\n%s", lines[len(lines)-1], out)
	}

	// -parallel with -limit abandons the stream mid-way; the process must
	// still exit cleanly (workers are released, not leaked).
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-r", "R1="+filepath.Join(dir, "R1.csv"),
		"-r", "R2="+filepath.Join(dir, "R2.csv"),
		"-r", "R3="+filepath.Join(dir, "R3.csv"),
		"-parallel", "-limit", "1",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run -parallel -limit: %v\n%s", err, out)
	}

	// ucq-experiments -quick renders the full document.
	out, err = exec.Command("go", "run", "./cmd/ucq-experiments", "-quick").CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "## E9 ") || strings.Contains(string(out), "MISMATCH") {
		t.Errorf("ucq-experiments output malformed")
	}
}
