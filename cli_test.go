package ucq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLISmoke builds and exercises the command-line tools end to end.
// Skipped in -short mode (it shells out to the Go toolchain).
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test shells out to go run")
	}
	dir := t.TempDir()

	queryPath := filepath.Join(dir, "query.ucq")
	if err := os.WriteFile(queryPath, []byte(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string]string{
		"R1": "1,2\n4,2\n",
		"R2": "2,3\n",
		"R3": "3,5\n3,6\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(rows), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// ucq-classify reports a tractable verdict with a certificate.
	out, err := exec.Command("go", "run", "./cmd/ucq-classify", "-v", queryPath).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-classify: %v\n%s", err, out)
	}
	for _, want := range []string{"verdict: tractable", "Theorem 12", "certificate"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("ucq-classify output missing %q:\n%s", want, out)
		}
	}

	// ucq-classify exits 1 on intractable queries.
	cmd := exec.Command("go", "run", "./cmd/ucq-classify")
	cmd.Stdin = strings.NewReader("Q(x,y) <- R(x,z), S(z,y).")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Errorf("ucq-classify should exit non-zero on intractable queries:\n%s", out)
	}
	if !strings.Contains(string(out), "verdict: intractable") {
		t.Errorf("ucq-classify output missing intractable verdict:\n%s", out)
	}

	// ucq-run streams the union's answers.
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-r", "R1="+filepath.Join(dir, "R1.csv"),
		"-r", "R2="+filepath.Join(dir, "R2.csv"),
		"-r", "R3="+filepath.Join(dir, "R3.csv"),
		"-count",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "constant-delay evaluation") {
		t.Errorf("ucq-run did not use the constant-delay engine:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[len(lines)-1] != "6" {
		t.Errorf("ucq-run count = %q, want 6\n%s", lines[len(lines)-1], out)
	}

	// -parallel mode counts the same answer set.
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-r", "R1="+filepath.Join(dir, "R1.csv"),
		"-r", "R2="+filepath.Join(dir, "R2.csv"),
		"-r", "R3="+filepath.Join(dir, "R3.csv"),
		"-count", "-parallel", "-batch", "2",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run -parallel: %v\n%s", err, out)
	}
	lines = strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[len(lines)-1] != "6" {
		t.Errorf("ucq-run -parallel count = %q, want 6\n%s", lines[len(lines)-1], out)
	}

	// -dataset routes the same evaluation through the catalog BindDataset
	// path (with the instance loaded from a JSON file).
	instPath := filepath.Join(dir, "inst.json")
	if err := os.WriteFile(instPath, []byte(`{"R1": [[1,2],[4,2]], "R2": [[2,3]], "R3": [[3,5],[3,6]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-dataset", "smoke="+instPath,
		"-count",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run -dataset: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "dataset smoke v1") {
		t.Errorf("ucq-run -dataset did not report the dataset binding:\n%s", out)
	}
	lines = strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[len(lines)-1] != "6" {
		t.Errorf("ucq-run -dataset count = %q, want 6\n%s", lines[len(lines)-1], out)
	}

	// -parallel with -limit abandons the stream mid-way; the process must
	// still exit cleanly (workers are released, not leaked).
	out, err = exec.Command("go", "run", "./cmd/ucq-run",
		"-q", queryPath,
		"-r", "R1="+filepath.Join(dir, "R1.csv"),
		"-r", "R2="+filepath.Join(dir, "R2.csv"),
		"-r", "R3="+filepath.Join(dir, "R3.csv"),
		"-parallel", "-limit", "1",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-run -parallel -limit: %v\n%s", err, out)
	}

	// ucq-experiments -quick renders the full document.
	out, err = exec.Command("go", "run", "./cmd/ucq-experiments", "-quick").CombinedOutput()
	if err != nil {
		t.Fatalf("ucq-experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "## E9 ") || strings.Contains(string(out), "MISMATCH") {
		t.Errorf("ucq-experiments output malformed")
	}
}

// TestServeSmoke builds and runs the ucq-serve binary and exercises the
// streaming endpoint over a real socket. Skipped in -short mode.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("server smoke test shells out to the Go toolchain")
	}
	bin := filepath.Join(t.TempDir(), "ucq-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/ucq-serve").CombinedOutput(); err != nil {
		t.Fatalf("go build ucq-serve: %v\n%s", err, out)
	}

	// Reserve a free port; the gap between Close and the server's Listen
	// is benign for a test on loopback.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + addr
	ready := false
	for i := 0; i < 150; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		t.Fatal("ucq-serve did not become ready")
	}

	body := `{"query": "Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w). Q2(x,y,w) <- R1(x,y), R2(y,w).",
		"relations": {"R1": [[1,2],[4,2]], "R2": [[2,3]], "R3": [[3,5],[3,6]]}}`
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		out := string(raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d\n%s", i, resp.StatusCode, out)
		}
		want := fmt.Sprintf(`{"done":true,"count":6,"mode":"constant-delay","cache":%q}`, wantCache)
		if !strings.Contains(out, want) {
			t.Errorf("request %d: response missing trailer %s:\n%s", i, want, out)
		}
	}

	// Dataset walkthrough over the real socket: register once, query
	// twice, observe the bind-cache hit in /stats.
	put, err := http.NewRequest(http.MethodPut, base+"/datasets/e2e", strings.NewReader(
		`{"relations": {"R1": [[1,2],[4,2]], "R2": [[2,3]], "R3": [[3,5],[3,6]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /datasets/e2e: status %d", resp.StatusCode)
	}
	dsQuery := `{"query": "Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w). Q2(x,y,w) <- R1(x,y), R2(y,w)."}`
	for i, wantBind := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/datasets/e2e/query", "application/json", strings.NewReader(dsQuery))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dataset query %d: status %d\n%s", i, resp.StatusCode, raw)
		}
		if want := fmt.Sprintf(`"bind":%q`, wantBind); !strings.Contains(string(raw), want) {
			t.Errorf("dataset query %d: trailer missing %s:\n%s", i, want, raw)
		}
	}
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		BindCache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"bind_cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.BindCache.Hits != 1 || stats.BindCache.Misses != 1 {
		t.Errorf("bind cache over the socket = %+v, want 1 hit / 1 miss", stats.BindCache)
	}
}

// TestServeGracefulShutdown builds and runs ucq-serve, opens a streaming
// request over a large instance, and sends SIGTERM mid-stream: the server
// must cancel the in-flight enumeration through the context plumbing (the
// stream ends without a trailer) and exit promptly instead of waiting out
// the full enumeration. Skipped in -short mode.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("server shutdown e2e shells out to the Go toolchain")
	}
	bin := filepath.Join(t.TempDir(), "ucq-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/ucq-serve").CombinedOutput(); err != nil {
		t.Fatalf("go build ucq-serve: %v\n%s", err, out)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + addr
	ready := false
	for i := 0; i < 150; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		t.Fatal("ucq-serve did not become ready")
	}

	// A 1.44M-answer star join: plenty of stream left when the signal
	// lands.
	const side = 1200
	rels := map[string][][]int64{"R": {}, "S": {}}
	for i := int64(0); i < side; i++ {
		rels["R"] = append(rels["R"], []int64{i, 0})
		rels["S"] = append(rels["S"], []int64{0, i})
	}
	body, err := json.Marshal(map[string]any{
		"query":     "Q(x,z,y) <- R(x,z), S(z,y).",
		"relations": rels,
		"options":   map[string]any{"parallel": true, "workers": 4, "batch": 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("first answer: %v", err)
	}
	if strings.HasPrefix(first, "{") {
		t.Fatalf("first line is a trailer, stream finished too fast: %s", first)
	}

	// Signal mid-stream; the server must go down well before the full
	// enumeration could stream out.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	// The in-flight stream is cancelled: it ends (EOF or reset) without
	// the done trailer.
	sawTrailer := false
	lines := 1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			break
		}
		lines++
		if strings.HasPrefix(line, "{") && strings.Contains(line, `"done":true`) {
			sawTrailer = true
		}
	}
	if sawTrailer {
		t.Errorf("cancelled stream still delivered a completion trailer after %d lines", lines)
	}
	if lines >= side*side/2 {
		t.Errorf("stream delivered %d answers after SIGTERM (of %d total)", lines, side*side)
	}

	select {
	case <-exited:
		// Graceful exit, stream cancelled: done.
	case <-time.After(15 * time.Second):
		t.Fatal("ucq-serve did not exit within 15s of SIGTERM")
	}
}

// TestServeSubscribeCLI runs the subscription protocol over a real socket
// through the built binaries: ucq-serve hosts a dataset, ucq-run
// -subscribe prints the initial answers, a PUT append lands while the
// subscription is live, and the pushed delta answer carries the client to
// its -limit, at which point it exits cleanly. Skipped in -short mode.
func TestServeSubscribeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subscribe CLI e2e shells out to the Go toolchain")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "ucq-serve")
	if out, err := exec.Command("go", "build", "-o", serveBin, "./cmd/ucq-serve").CombinedOutput(); err != nil {
		t.Fatalf("go build ucq-serve: %v\n%s", err, out)
	}
	runBin := filepath.Join(dir, "ucq-run")
	if out, err := exec.Command("go", "build", "-o", runBin, "./cmd/ucq-run").CombinedOutput(); err != nil {
		t.Fatalf("go build ucq-run: %v\n%s", err, out)
	}
	queryPath := filepath.Join(dir, "sub.ucq")
	if err := os.WriteFile(queryPath, []byte("Q(x,y,z) <- R(x,y), S(y,z).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	serve := exec.Command(serveBin, "-addr", addr)
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()
	base := "http://" + addr
	ready := false
	for i := 0; i < 150; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		t.Fatal("ucq-serve did not become ready")
	}

	put := func(body string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, base+"/datasets/edges", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT /datasets/edges: status %d", resp.StatusCode)
		}
	}
	put(`{"relations": {"R": [[1,10],[2,20]], "S": [[10,100],[20,200]]}}`)

	// -limit 3: two initial answers plus the one the append pushes.
	sub := exec.Command(runBin, "-q", queryPath, "-remote", base, "-dataset", "edges", "-subscribe", "-limit", "3")
	var stdout, stderr strings.Builder
	sub.Stdout = &stdout
	sub.Stderr = &stderr
	if err := sub.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if killed {
			return
		}
		sub.Process.Kill()
		sub.Wait()
	}()

	// Only append once the server reports the live subscription, so the
	// delta is pushed rather than folded into the initial set.
	subscribed := false
	for i := 0; i < 150; i++ {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			Subscriptions struct {
				Active int64 `json:"active"`
			} `json:"subscriptions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Subscriptions.Active >= 1 {
			subscribed = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !subscribed {
		t.Fatal("subscription never showed up in /stats")
	}
	put(`{"relations": {"R": [[3,10]]}, "append": true}`)

	done := make(chan error, 1)
	go func() { done <- sub.Wait() }()
	select {
	case err := <-done:
		killed = true
		if err != nil {
			t.Fatalf("ucq-run -subscribe: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("ucq-run -subscribe did not reach -limit within 30s\nstdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
	}

	lines := strings.Fields(strings.TrimSpace(stdout.String()))
	want := map[string]bool{"1,10,100": false, "2,20,200": false, "3,10,100": false}
	if len(lines) != 3 {
		t.Fatalf("stdout = %q, want exactly 3 answers", lines)
	}
	for _, line := range lines {
		if _, ok := want[line]; !ok {
			t.Errorf("unexpected answer line %q", line)
		}
		want[line] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing answer %s", k)
		}
	}
	if !strings.Contains(stderr.String(), "complete through v1") {
		t.Errorf("stderr missing the v1 version marker:\n%s", stderr.String())
	}
}
